"""The surviving-graph structure cache and its vectorized building blocks.

Three contracts live here:

* :func:`~repro.networks.degraded.batched_surviving_distances` (a
  level-synchronous frontier sweep over CSR adjacency) equals the scalar
  per-destination BFS in :func:`~repro.networks.degraded.surviving_distances`
  for every destination;
* :class:`~repro.faults.ResolvedFaults` caches one
  :class:`~repro.networks.degraded.SurvivingGraph` per topology, and
  :func:`~repro.faults.resolve_faults` memoizes per ``(topology, model)`` —
  so repeated ``route_demands`` calls against one fault configuration share
  a single adjacency/CSR/BFS structure instead of rebuilding it per call;
* :meth:`FaultModel.transmit_ok_batch` reproduces the scalar
  :meth:`FaultModel.transmit_ok` draw sequence exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import FaultModel, resolve_faults
from repro.networks import Hypercube, Mesh2D, Torus2D
from repro.networks.degraded import (
    SurvivingGraph,
    batched_surviving_distances,
    surviving_adjacency,
    surviving_csr,
    surviving_distances,
)
from repro.sim import route_demands


def _adjacency(topo, model):
    return surviving_adjacency(topo, resolve_faults(model, topo))


class TestBatchedBfs:
    @pytest.mark.parametrize("topo", [Mesh2D(4), Torus2D(4), Hypercube(4)],
                             ids=["mesh", "torus", "cube"])
    def test_matches_scalar_bfs_everywhere(self, topo):
        model = FaultModel(link_fail_fraction=0.2, seed=5)
        adj = _adjacency(topo, model)
        indptr, indices = surviving_csr(adj)
        n = topo.num_nodes
        dests = np.arange(n, dtype=np.int64)
        table = batched_surviving_distances(indptr, indices, dests)
        for d in range(n):
            assert table[d].tolist() == surviving_distances(adj, d)

    def test_csr_rows_are_the_adjacency_lists(self):
        adj = _adjacency(Mesh2D(3), FaultModel(link_fail_fraction=0.1, seed=2))
        indptr, indices = surviving_csr(adj)
        for u, nbrs in enumerate(adj):
            assert indices[indptr[u]:indptr[u + 1]].tolist() == list(nbrs)

    def test_partitioned_nodes_stay_minus_one(self):
        # Two isolated components: 0-1 and 2-3.
        adj = [[1], [0], [3], [2]]
        indptr, indices = surviving_csr(adj)
        table = batched_surviving_distances(
            indptr, indices, np.array([0, 2], dtype=np.int64)
        )
        assert table[0].tolist() == [0, 1, -1, -1]
        assert table[1].tolist() == [-1, -1, 0, 1]


class TestStructureCaching:
    def test_resolve_faults_is_memoized_per_topology_and_model(self):
        topo = Mesh2D(4)
        model = FaultModel(link_fail_fraction=0.2, seed=1)
        assert resolve_faults(model, topo) is resolve_faults(model, topo)
        # A distinct topology object resolves fresh (faults are sampled
        # against that object's link set).
        other = Mesh2D(4)
        assert resolve_faults(model, topo) is not resolve_faults(model, other)

    def test_surviving_graph_cached_on_resolved_faults(self):
        topo = Mesh2D(4)
        resolved = resolve_faults(
            FaultModel(link_fail_fraction=0.2, seed=1), topo
        )
        graph = resolved.surviving_graph(topo)
        assert isinstance(graph, SurvivingGraph)
        assert resolved.surviving_graph(topo) is graph

    def test_repeated_route_demands_share_one_structure(self):
        """Satellite contract: two engine runs against one fault config
        must hit the same ResolvedFaults *and* the same SurvivingGraph
        object — no per-call adjacency/CSR/BFS rebuild."""
        topo = Mesh2D(4)
        model = FaultModel(link_fail_fraction=0.2, seed=5)
        demands = [(i, (i + 5) % 16) for i in range(16)]
        for backend in ("indexed", "numpy"):
            route_demands(
                topo, demands, fault_model=model, backend=backend,
                cache=False,
            )
            resolved = resolve_faults(model, topo)
            graph = resolved.surviving_graph(topo)
            route_demands(
                topo, demands, fault_model=model, backend=backend,
                cache=False,
            )
            assert resolve_faults(model, topo) is resolved
            assert resolved.surviving_graph(topo) is graph

    def test_bfs_tables_grow_and_persist_across_calls(self):
        topo = Mesh2D(4)
        model = FaultModel(link_fail_fraction=0.2, seed=5)
        graph = resolve_faults(model, topo).surviving_graph(topo)
        dests = np.array([3, 7], dtype=np.int64)
        table, dest_row = graph.dest_table(dests)
        assert (dest_row[dests] >= 0).all()
        again, _ = graph.dest_table(dests)
        assert again is table  # no re-BFS for warm destinations

    def test_cache_does_not_leak_into_pickles(self):
        import pickle

        topo = Mesh2D(4)
        resolved = resolve_faults(
            FaultModel(link_fail_fraction=0.2, seed=1), topo
        )
        resolved.surviving_graph(topo)  # warm the (unpicklable) cache
        clone = pickle.loads(pickle.dumps(resolved))
        assert clone.down_links == resolved.down_links
        assert clone._cache == {}


class TestBatchedDrops:
    def test_batch_matches_scalar_draws(self):
        model = FaultModel(drop_prob=0.37, seed=99)
        pids = np.arange(64, dtype=np.int64)
        for step in (0, 1, 17):
            batch = model.transmit_ok_batch(step, pids)
            assert batch.tolist() == [
                model.transmit_ok(step, int(p)) for p in pids
            ]

    def test_degenerate_probabilities_short_circuit(self):
        pids = np.arange(8, dtype=np.int64)
        assert FaultModel(drop_prob=0.0).transmit_ok_batch(3, pids).all()
        assert not FaultModel(drop_prob=1.0).transmit_ok_batch(3, pids).any()
