"""Unit tests for the per-topology bit-reversal schedules."""

import pytest

from repro.core import (
    bit_reversal_schedule,
    hypercube_bit_reversal_schedule,
    hypermesh_bit_reversal_schedule,
    mesh_bit_reversal_schedule,
)
from repro.networks import Hypercube, Hypermesh, Hypermesh2D, Mesh2D, Torus2D
from repro.routing import bit_reversal


class TestHypercube:
    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 5, 6])
    def test_valid_and_logical(self, dim):
        cube = Hypercube(dim)
        sched = hypercube_bit_reversal_schedule(cube)
        sched.validate()
        assert sched.logical == bit_reversal(cube.num_nodes)

    @pytest.mark.parametrize("dim,expected", [(1, 0), (2, 2), (3, 2), (4, 4), (6, 6), (12, 12)])
    def test_step_count_is_two_floor_half(self, dim, expected):
        sched = hypercube_bit_reversal_schedule(Hypercube(dim))
        assert sched.num_steps == expected

    def test_even_dims_match_paper_log_n(self):
        # For the paper's 4K machine (n=12) the count equals log N exactly.
        assert hypercube_bit_reversal_schedule(Hypercube(12)).num_steps == 12

    def test_never_exceeds_log_n(self):
        for dim in range(1, 10):
            assert hypercube_bit_reversal_schedule(Hypercube(dim)).num_steps <= dim


class TestHypermesh:
    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_at_most_three_steps(self, side):
        hm = Hypermesh2D(side)
        sched = hypermesh_bit_reversal_schedule(hm)
        sched.validate()
        assert sched.num_steps <= 3
        assert sched.logical == bit_reversal(hm.num_nodes)

    def test_side_two_special_case(self):
        # 2x2: bit reversal swaps (0,1) with (1,0) — a transpose, <= 3 steps.
        sched = hypermesh_bit_reversal_schedule(Hypermesh2D(2))
        sched.validate()

    def test_non_power_of_two_side_rejected(self):
        with pytest.raises(ValueError):
            hypermesh_bit_reversal_schedule(Hypermesh2D(3))


class TestMesh:
    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_valid_and_logical(self, side):
        mesh = Mesh2D(side)
        sched = mesh_bit_reversal_schedule(mesh)
        sched.validate()
        assert sched.logical == bit_reversal(mesh.num_nodes)

    @pytest.mark.parametrize("side", [4, 8])
    def test_steps_at_least_corner_interchange(self, side):
        sched = mesh_bit_reversal_schedule(Mesh2D(side))
        assert sched.num_steps >= 2 * (side - 1)

    def test_torus_beats_or_ties_mesh(self):
        mesh_steps = mesh_bit_reversal_schedule(Mesh2D(8)).num_steps
        torus_steps = mesh_bit_reversal_schedule(Torus2D(8)).num_steps
        assert torus_steps <= mesh_steps

    def test_torus_at_least_half_side(self):
        # Paper: with wrap-around, not less than sqrt(N)/2.
        sched = mesh_bit_reversal_schedule(Torus2D(8))
        assert sched.num_steps >= 4


class TestDispatch:
    def test_all_topologies(self):
        for topo in (Mesh2D(4), Torus2D(4), Hypercube(4), Hypermesh2D(4)):
            sched = bit_reversal_schedule(topo)
            sched.validate()
            assert sched.logical == bit_reversal(16)

    def test_general_hypermesh_adaptive(self):
        hm = Hypermesh(4, 3)  # 64 nodes, 3 dims
        sched = bit_reversal_schedule(hm)
        sched.validate()
        assert sched.logical == bit_reversal(64)

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            bit_reversal_schedule(object())
