"""Unit tests for FaultAwareRouter: detours, partitions, degraded nets."""

from __future__ import annotations

import pytest

from repro.faults import (
    FaultModel,
    UnroutableError,
    fault_aware_router,
    resolve_faults,
)
from repro.networks import Hypermesh2D, Mesh2D
from repro.networks.degraded import (
    components_under,
    surviving_adjacency,
    surviving_distances,
)
from repro.sim.routers import route_path, router_for


class TestDetours:
    def test_fault_free_region_defers_to_base(self):
        topo = Mesh2D(4)
        base = router_for(topo)
        # Fault far away from the 0 -> 3 route along the top row.
        far = fault_aware_router(topo, FaultModel(link_failures={(12, 13)}))
        assert route_path(far, 0, 3) == route_path(base, 0, 3)

    def test_detour_length_is_surviving_distance(self):
        topo = Mesh2D(4)
        model = FaultModel(link_failures={(0, 1), (4, 5)})
        far = fault_aware_router(topo, model)
        faults = resolve_faults(model, topo)
        adjacency = surviving_adjacency(topo, faults)
        for dest in range(16):
            dist = surviving_distances(adjacency, dest)
            for src in range(16):
                if src == dest:
                    continue
                path = route_path(far, src, dest)
                assert len(path) - 1 == dist[src]

    def test_dead_destination_raises(self):
        far = fault_aware_router(Mesh2D(4), FaultModel(node_failures={5}))
        with pytest.raises(UnroutableError, match="destination 5 is a failed node"):
            far.next_hop(0, 5)

    def test_dead_current_raises(self):
        far = fault_aware_router(Mesh2D(4), FaultModel(node_failures={5}))
        with pytest.raises(UnroutableError, match="packet at failed node 5"):
            far.next_hop(5, 0)

    def test_partition_raises(self):
        # Cut node 0 off completely: links (0,1) and (0,4) both down.
        far = fault_aware_router(
            Mesh2D(4), FaultModel(link_failures={(0, 1), (0, 4)})
        )
        with pytest.raises(UnroutableError, match="partition the network"):
            far.next_hop(0, 15)

    def test_drop_only_model_routes_like_base(self):
        topo = Mesh2D(4)
        base = router_for(topo)
        far = fault_aware_router(topo, FaultModel(drop_prob=0.5))
        for src, dst in [(0, 15), (3, 12), (7, 8)]:
            assert route_path(far, src, dst) == route_path(base, src, dst)


class TestCheckRoutable:
    def test_names_the_doomed_packet(self):
        far = fault_aware_router(Mesh2D(4), FaultModel(node_failures={2}))
        with pytest.raises(
            UnroutableError, match="packet 1 originates at failed node 2"
        ):
            far.check_routable([0, 2], [5, 6])
        with pytest.raises(
            UnroutableError, match="packet 0 targets failed node 2"
        ):
            far.check_routable([0], [2])

    def test_partitioned_pair_named(self):
        far = fault_aware_router(
            Mesh2D(4), FaultModel(link_failures={(0, 1), (0, 4)})
        )
        with pytest.raises(
            UnroutableError, match=r"packet 0 \(0 -> 15\) is unroutable"
        ):
            far.check_routable([0], [15])

    def test_clean_demand_set_passes(self):
        far = fault_aware_router(Mesh2D(4), FaultModel(link_failures={(0, 1)}))
        far.check_routable(list(range(16)), list(reversed(range(16))))


class TestHypermeshNets:
    def test_shared_net_skips_down_nets(self):
        hm = Hypermesh2D(4)
        # Nodes 0 and 1 share only row net 4; with it down there is no
        # single-net hop between them.
        far = fault_aware_router(hm, FaultModel(net_failures={4}))
        assert far.shared_net(0, 1) is None
        # 0 and 4 share column net 0, untouched.
        assert far.shared_net(0, 4) == 0

    def test_degraded_net_still_reachable(self):
        hm = Hypermesh2D(4)
        far = fault_aware_router(hm, FaultModel(degraded_nets={4}))
        # Degradation is a capacity fault, not a reachability fault.
        assert far.next_hop(0, 1) == 1


class TestSurvivingGraph:
    def test_down_node_is_isolated(self):
        faults = resolve_faults(FaultModel(node_failures={5}), Mesh2D(4))
        adjacency = surviving_adjacency(Mesh2D(4), faults)
        assert adjacency[5] == ()
        assert all(5 not in nbrs for nbrs in adjacency)

    def test_components_split_on_cut(self):
        faults = resolve_faults(
            FaultModel(link_failures={(0, 1), (0, 4)}), Mesh2D(4)
        )
        adjacency = surviving_adjacency(Mesh2D(4), faults)
        comps = components_under(adjacency)
        assert sorted(map(len, comps)) == [1, 15]
