"""Deterministic task entry points for exercising the executor.

These are real entry points (importable by worker processes) used by the
test suite and the CI campaign smoke job to inject each failure mode the
executor must isolate: a raised exception, a hang that trips the per-task
timeout, and a hard process death.  They live in the package, not in the
tests, so spec files written by users (and the CI workflow) can reference
them by dotted path.
"""

from __future__ import annotations

import os
import time

__all__ = ["echo_task", "failing_task", "sleeping_task", "crashing_task"]


def echo_task(params: dict) -> dict:
    """Return the parameters, tagged with the worker's pid — the no-op task."""
    return {"echo": dict(params), "pid": os.getpid()}


def failing_task(params: dict) -> dict:
    """Raise: the executor must record a ``failed``/``exception`` record
    carrying this traceback while sibling tasks complete."""
    raise RuntimeError(params.get("message", "injected campaign failure"))


def sleeping_task(params: dict) -> dict:
    """Sleep ``params['seconds']`` (default 60) — the timeout-path probe."""
    seconds = float(params.get("seconds", 60.0))
    time.sleep(seconds)
    return {"slept": seconds}


def crashing_task(params: dict) -> dict:
    """Kill the worker process outright (no Python-level cleanup), the way a
    segfaulting extension would."""
    os._exit(int(params.get("code", 17)))
