"""All-reduce and broadcast via butterfly exchanges (ASCEND algorithms).

The butterfly all-reduce: at each stage partners exchange and combine, so
after ``log N`` exchanges every PE holds the reduction of all ``N`` values —
no separate reduce-then-broadcast tree needed.  Broadcast is the degenerate
case (combine = take the root's value, tracked with a validity flag).

Both cost exactly the FFT's butterfly communication: ``log N`` steps on
hypercube/hypermesh, ``2(sqrt(N)-1)`` on the mesh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..networks.base import Topology
from .ascend_descend import run_ascend

__all__ = ["ReduceResult", "parallel_allreduce", "parallel_broadcast"]


@dataclass(frozen=True)
class ReduceResult:
    """Outcome of an all-reduce or broadcast."""

    values: np.ndarray
    data_transfer_steps: int
    computation_steps: int


def parallel_allreduce(
    topology: Topology,
    values: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    *,
    validate: bool = False,
) -> ReduceResult:
    """Combine one value per PE with ``op``; every PE gets the result.

    ``op`` must be associative and commutative (np.add, np.maximum, ...).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape[0] != topology.num_nodes:
        raise ValueError(
            f"{values.shape[0]} values need {values.shape[0]} PEs, topology "
            f"has {topology.num_nodes}"
        )

    def operator(stage, bit, vals, received, idx):
        return op(vals, received)

    result = run_ascend(topology, values, operator, validate=validate)
    return ReduceResult(
        values=result.values,
        data_transfer_steps=result.data_transfer_steps,
        computation_steps=result.computation_steps,
    )


def parallel_broadcast(
    topology: Topology,
    values: np.ndarray,
    root: int = 0,
    *,
    validate: bool = False,
) -> ReduceResult:
    """Deliver the root PE's value to every PE via butterfly exchanges.

    Tracks a per-PE validity flag: at each stage a PE without the value yet
    adopts its partner's if the partner has it — after ``log N`` stages
    everyone does.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError("expected a 1D value vector")
    n = topology.num_nodes
    if values.size != n:
        raise ValueError(f"{values.size} values need {values.size} PEs, topology has {n}")
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range [0, {n})")

    state = np.zeros((n, 2))
    state[:, 0] = values
    state[root, 1] = 1.0  # validity flag

    def operator(stage, bit, vals, received, idx):
        out = vals.copy()
        take = (vals[:, 1] == 0) & (received[:, 1] == 1)
        out[:, 0] = np.where(take, received[:, 0], vals[:, 0])
        out[:, 1] = np.maximum(vals[:, 1], received[:, 1])
        return out

    result = run_ascend(topology, state, operator, validate=validate)
    return ReduceResult(
        values=result.values[:, 0],
        data_transfer_steps=result.data_transfer_steps,
        computation_steps=result.computation_steps,
    )
