"""End-to-end workload tests: realistic signal-processing pipelines running
on the simulated parallel machines."""

import numpy as np
import pytest

from repro.fft import ifft_dif, parallel_fft
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.sort import parallel_bitonic_sort


class TestSpectralAnalysis:
    def test_tone_detection_on_hypermesh(self, rng):
        # A noisy two-tone signal; the parallel FFT must locate both bins.
        n = 64
        t = np.arange(n)
        signal = (
            2.0 * np.sin(2 * np.pi * 5 * t / n)
            + 1.0 * np.sin(2 * np.pi * 17 * t / n)
            + 0.05 * rng.normal(size=n)
        )
        result = parallel_fft(Hypermesh2D(8), signal, validate=True)
        mag = np.abs(result.spectrum[: n // 2])
        top_two = set(np.argsort(mag)[-2:])
        assert top_two == {5, 17}

    def test_convolution_theorem_across_networks(self, rng):
        # Circular convolution via the parallel FFT equals the direct sum.
        n = 16
        x = rng.normal(size=n)
        h = rng.normal(size=n)
        direct = np.array(
            [sum(x[m] * h[(k - m) % n] for m in range(n)) for k in range(n)]
        )
        for topo in (Mesh2D(4), Hypercube(4), Hypermesh2D(4)):
            fx = parallel_fft(topo, x).spectrum
            fh = parallel_fft(topo, h).spectrum
            conv = ifft_dif(fx * fh)
            assert np.allclose(conv.real, direct, atol=1e-8)

    def test_forward_then_inverse_identity(self, rng):
        n = 64
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        fwd = parallel_fft(Hypercube(6), x).spectrum
        # Inverse via conjugation on the same machine.
        inv = np.conj(parallel_fft(Hypercube(6), np.conj(fwd)).spectrum) / n
        assert np.allclose(inv, x)


class TestSortPipeline:
    def test_median_extraction(self, rng):
        keys = rng.normal(size=64)
        result = parallel_bitonic_sort(Mesh2D(8), keys, validate=True)
        assert result.keys[31] == np.sort(keys)[31]

    def test_sort_then_fft_windowing(self, rng):
        # Order statistics filter then spectral analysis — two staged
        # parallel algorithms on the same machine.
        topo = Hypermesh2D(4)
        keys = rng.normal(size=16)
        sorted_keys = parallel_bitonic_sort(topo, keys).keys
        trimmed = sorted_keys.copy()
        trimmed[:2] = 0.0
        trimmed[-2:] = 0.0
        spectrum = parallel_fft(topo, trimmed).spectrum
        assert np.allclose(spectrum, np.fft.fft(trimmed))


class TestCostAccountingEndToEnd:
    def test_fft_wall_clock_estimate_4k(self):
        """Join the executed schedule with the hardware model: the simulated
        4K hypermesh FFT must price out at the paper's 0.3 us."""
        from repro.core import map_fft
        from repro.hardware import GAAS_1992, step_time
        from repro.networks import Hypermesh2D

        hm = Hypermesh2D(64)
        mapping = map_fft(hm)
        total = mapping.total_steps * step_time(hm, GAAS_1992)
        assert total == pytest.approx(0.3e-6)

    def test_hypercube_wall_clock_estimate_4k(self):
        from repro.core import map_fft
        from repro.hardware import GAAS_1992, step_time
        from repro.networks import Hypercube

        hc = Hypercube(12)
        mapping = map_fft(hc)
        total = mapping.total_steps * step_time(hc, GAAS_1992)
        assert total == pytest.approx(3.12e-6, rel=1e-2)
