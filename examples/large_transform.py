"""Blocked FFT and collectives: more samples than processors.

The paper's machines have one sample per PE; production transforms do not.
This example runs a 16K-point FFT on a 256-PE machine (64 samples per PE),
then uses the butterfly collectives (all-reduce, prefix sum) to normalize
the spectrum and compute a running energy profile — a complete spectral
pipeline where every data movement is costed at the word level.

    python examples/large_transform.py
"""

import numpy as np

from repro import GAAS_1992, Hypercube, Hypermesh2D, Mesh2D, blocked_fft
from repro.algos import parallel_allreduce, parallel_prefix_sum
from repro.hardware import step_time
from repro.viz import format_table, format_time


def main() -> None:
    pe_side = 16
    num_pes = pe_side * pe_side
    num_samples = 16384
    block = num_samples // num_pes
    rng = np.random.default_rng(11)

    t = np.arange(num_samples)
    signal = (
        np.sin(2 * np.pi * 300 * t / num_samples)
        + 0.5 * np.sin(2 * np.pi * 1200 * t / num_samples)
        + 0.1 * rng.normal(size=num_samples)
    )

    print(
        f"{num_samples}-point FFT on {num_pes} PEs "
        f"({block} samples per PE, {int(np.log2(block))} local + "
        f"{int(np.log2(num_pes))} remote stages)\n"
    )

    rows = []
    spectrum = None
    for topo in (Mesh2D(pe_side), Hypercube(8), Hypermesh2D(pe_side)):
        result = blocked_fft(topo, signal)
        assert np.allclose(result.spectrum, np.fft.fft(signal))
        spectrum = result.spectrum
        per_step = step_time(topo, GAAS_1992)
        rows.append(
            [
                type(topo).__name__,
                result.butterfly_steps,
                result.bitrev_steps,
                result.total_steps,
                format_time(result.total_steps * per_step),
            ]
        )
    print(
        format_table(
            ["network", "butterfly", "bit-reversal", "total steps", "comm time"],
            rows,
        )
    )

    # Post-processing with butterfly collectives on the 256-PE hypermesh:
    # per-PE partial energies -> total (all-reduce) and running profile
    # (prefix sum), each costing exactly log P net steps.
    hm = Hypermesh2D(pe_side)
    energies = np.abs(spectrum.reshape(num_pes, block)) ** 2
    per_pe = energies.sum(axis=1)
    total = parallel_allreduce(hm, per_pe)
    profile = parallel_prefix_sum(hm, per_pe)
    assert np.allclose(total.values[0], per_pe.sum())
    assert np.allclose(profile.inclusive, np.cumsum(per_pe))

    dominant = int(np.argmax(np.abs(spectrum[: num_samples // 2])))
    print(f"\ndominant bin: {dominant} (expected 300)")
    print(
        f"all-reduce of per-PE energies: {total.data_transfer_steps} net steps; "
        f"prefix-sum profile: {profile.data_transfer_steps} net steps"
    )
    half_idx = int(np.searchsorted(profile.inclusive, 0.5 * per_pe.sum()))
    print(f"half the signal energy sits in the first {half_idx + 1} PE blocks")


if __name__ == "__main__":
    main()
