"""Command-line interface: regenerate every table and figure of the paper.

Usage (installed as ``repro``, or ``python -m repro``)::

    repro paper             # regenerate every paper artifact (results/paper/)
    repro paper --check     # ... and diff tables against checked-in goldens
    repro tables            # Tables 1A, 1B, 2A, 2B at N=4096
    repro section4          # the 4K-PE worked comparison (eqs 2-4, IV-B)
    repro bisection         # Section V bisection bandwidths
    repro sweep             # speedup vs machine size (headline asymptotics)
    repro figures           # ASCII Figs 1-3
    repro fft --side 8      # run a verified parallel FFT on all networks
    repro sort --side 4     # run a verified parallel bitonic sort
    repro campaign run engine-sweep --workers 4   # parallel resumable sweep
    repro campaign status engine-sweep            # done / failed / pending
    repro campaign report engine-sweep            # BENCH-style JSON report
    repro trace all --n 64 --summary              # JSONL observability traces
    repro profile engine-hypermesh                # cProfile top-N as JSON

Subcommands return a nonzero exit code when what they ran failed (an
experiment that does not reproduce, a campaign task that fails), so the CLI
composes with CI and shell scripts.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.complexity import NetworkKind
from .hardware.technology import GAAS_1992
from .models.bisection import bisection_bandwidth_formula, bisection_ratios
from .models.speedup import bitonic_comparison, section4_comparison, speedup_sweep
from .models.tables import table_1a, table_1b, table_2a, table_2b
from .viz.diagrams import (
    render_butterfly_graph,
    render_hypermesh_2d,
    render_pe_node,
)
from .viz.series import ascii_chart, format_bandwidth, format_rows, format_table, format_time

__all__ = ["main"]

_NETWORKS = (NetworkKind.MESH_2D, NetworkKind.HYPERCUBE, NetworkKind.HYPERMESH_2D)


def _cmd_tables(args: argparse.Namespace) -> None:
    n = args.num_pes
    print(f"== Table 1A: hardware complexity before normalization (N={n}) ==")
    print(
        format_rows(
            table_1a(n),
            ["network", "crossbars", "crossbars_formula", "degree", "diameter", "diameter_formula"],
        )
    )
    print(f"\n== Table 1B: after normalization (N={n}) ==")
    rows = table_1b(n)
    for row in rows:
        row["link_bw"] = format_bandwidth(row["link_bw"])
    print(format_rows(rows, ["network", "link_bw", "link_bw_formula", "diameter", "d_over_bw"]))
    print(f"\n== Table 2A: N-FFT step counts (N={n}) ==")
    print(
        format_rows(
            table_2a(n),
            ["network", "bitrev_steps", "bitrev_formula", "dt_steps", "total_steps", "total_formula"],
        )
    )
    print(f"\n== Table 2B: FFT execution time after normalization (N={n}) ==")
    rows = table_2b(n)
    for row in rows:
        row["step_time"] = format_time(row["step_time"])
        row["comm_time"] = format_time(row["comm_time"])
    print(
        format_rows(
            rows,
            ["network", "dt_steps", "steps_formula", "step_time", "comm_time", "time_formula"],
        )
    )


def _print_comparison(title: str, cmp_) -> None:
    print(f"== {title} ==")
    rows = []
    for kind in _NETWORKS:
        t = cmp_.times[kind]
        rows.append(
            [kind.value, f"{t.steps:g}", format_time(t.step_time), format_time(t.total)]
        )
    print(format_table(["network", "steps", "per step", "total comm time"], rows))
    print(
        f"hypermesh speedup: {cmp_.speedup_vs_mesh:.1f}x vs mesh, "
        f"{cmp_.speedup_vs_hypercube:.1f}x vs hypercube"
    )


def _cmd_section4(args: argparse.Namespace) -> None:
    n = args.num_pes
    _print_comparison(
        f"Section IV-A: {n}-point FFT on {n} PEs, negligible propagation delay",
        section4_comparison(n),
    )
    print()
    _print_comparison(
        "Section IV-A variant: bit-reversal not needed",
        section4_comparison(n, include_bitrev=False),
    )
    print()
    _print_comparison(
        "Section IV-B: 20 ns propagation delay on long-line networks",
        section4_comparison(n, propagation_delay=20e-9),
    )
    print()
    _print_comparison(
        "Section IV-A cross-check: bitonic sort ([13] quotes 12.3x / 6.47x)",
        bitonic_comparison(n),
    )


def _cmd_bisection(args: argparse.Namespace) -> None:
    n = args.num_pes
    print(f"== Section V: bisection bandwidth (N={n}, paper convention) ==")
    rows = []
    for kind in _NETWORKS:
        bb = bisection_bandwidth_formula(kind, n, GAAS_1992, paper_convention=True)
        rows.append([kind.value, f"{bb.channels:g}", format_bandwidth(bb.per_channel),
                     format_bandwidth(bb.total)])
    print(format_table(["network", "crossing channels", "per channel", "bisection BW"], rows))
    r_mesh, r_hc = bisection_ratios(n, GAAS_1992)
    print(f"hypermesh / mesh   = {r_mesh:g}  (O(sqrt N): 2.5*sqrt(N) = {2.5 * n**0.5:g})")
    print(f"hypermesh / h-cube = {r_hc:g}  (O(log N): log2(N) = {n.bit_length() - 1})")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .campaign import CampaignSpec, run_campaign

    sizes = [4**k for k in range(2, args.max_exponent + 1)]
    # One task per machine size, submitted through the campaign executor:
    # `--workers` fans the sizes out over worker processes and a crashing
    # size surfaces as a failed task instead of killing the sweep.
    spec = CampaignSpec.from_grid(
        "speedup-sweep", "repro.models.speedup:sweep_task", {"n": sizes}
    )
    result = run_campaign(spec, workers=getattr(args, "workers", 1))
    if not result.ok:
        for record in result.records:
            if not record.ok:
                print(f"sweep task {record.label} failed:", file=sys.stderr)
                print(record.traceback, file=sys.stderr)
        return 1
    rows = [(p["n"], p["vs_mesh"], p["vs_hypercube"]) for p in result.payloads()]
    print("== Hypermesh FFT speedup vs machine size (paper step convention) ==")
    print(
        format_table(
            ["N", "vs 2D mesh", "vs hypercube"],
            [[n, f"{m:.2f}", f"{h:.2f}"] for n, m, h in rows],
        )
    )
    print()
    print(
        ascii_chart(
            [float(n) for n, _, _ in rows],
            {
                "mesh speedup ~ sqrt(N)/log N": [m for _, m, _ in rows],
                "cube speedup ~ log N": [h for _, _, h in rows],
            },
            log_y=True,
            title="speedup growth (log y; x = machine sizes 4^k)",
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> None:
    print("== Fig. 1: 2D hypermesh ==")
    print(render_hypermesh_2d(args.side))
    print("\n== Fig. 2: PE-node ==")
    print(render_pe_node(2))
    print("\n== Fig. 3: FFT data-flow graph ==")
    # Largest power of two <= side^2, capped at 16 rows of output.
    points = 1 << min(4, (args.side * args.side).bit_length() - 1)
    print(render_butterfly_graph(points))


def _cmd_fft(args: argparse.Namespace) -> None:
    from .fft.parallel import parallel_fft
    from .networks import Hypercube, Hypermesh2D, Mesh2D
    from .networks.addressing import ilog2

    side = args.side
    n = side * side
    rng = np.random.default_rng(args.seed)
    x = rng.normal(size=n) + 1j * rng.normal(size=n)
    expected = np.fft.fft(x)
    print(f"== {n}-point parallel FFT, one sample per PE ==")
    for topo in (Mesh2D(side), Hypercube(ilog2(n)), Hypermesh2D(side)):
        result = parallel_fft(topo, x, validate=True)
        ok = np.allclose(result.spectrum, expected)
        print(
            f"{type(topo).__name__:12s}: numpy-agreement={ok}  "
            f"transfer steps={result.data_transfer_steps}  "
            f"compute steps={result.computation_steps}"
        )


def _cmd_sort(args: argparse.Namespace) -> None:
    from .networks import Hypercube, Hypermesh2D, Mesh2D
    from .networks.addressing import ilog2
    from .sort.bitonic import parallel_bitonic_sort

    side = args.side
    n = side * side
    rng = np.random.default_rng(args.seed)
    keys = rng.normal(size=n)
    print(f"== {n}-key parallel bitonic sort, one key per PE ==")
    for topo in (Mesh2D(side), Hypercube(ilog2(n)), Hypermesh2D(side)):
        result = parallel_bitonic_sort(topo, keys, validate=True)
        ok = bool(np.all(np.diff(result.keys) >= 0))
        print(
            f"{type(topo).__name__:12s}: sorted={ok}  "
            f"transfer steps={result.data_transfer_steps}  "
            f"passes={result.computation_steps}"
        )


def _cmd_omega(args: argparse.Namespace) -> None:
    from .networks import OmegaNetwork
    from .routing import (
        Permutation,
        bit_reversal,
        butterfly_exchange,
        route_permutation_3step,
    )

    n = args.num_ports
    om = OmegaNetwork(n)
    width = n.bit_length() - 1
    print(f"== Omega network vs 2D hypermesh, N = {n} ==")
    admissible = [om.is_admissible(butterfly_exchange(n, b)) for b in range(width)]
    print(f"FFT butterfly exchanges admissible in one pass: {all(admissible)}")
    rev = bit_reversal(n)
    print(
        f"bit reversal: Omega needs {om.passes_required(rev)} passes, "
        f"hypermesh {route_permutation_3step(rev).num_steps} steps"
    )
    rng = np.random.default_rng(args.seed)
    passes = [
        om.passes_required(Permutation.random(n, rng)) for _ in range(5)
    ]
    print(f"5 random permutations: Omega passes {passes}, hypermesh <= 3 each")


def _cmd_universality(args: argparse.Namespace) -> None:
    from .models import empirical_random_routing_steps, slowdown_table

    rows = slowdown_table([2**k for k in (6, 8, 10, 12, 16, 20)])
    print("== Universal-simulation slowdowns (Section I; [15] vs [13]) ==")
    print(
        format_table(
            ["N", "hypercube O(log N)", "hypermesh O(log/loglog)", "advantage"],
            [
                [r.num_pes, f"{r.hypercube:.1f}", f"{r.hypermesh:.2f}", f"{r.advantage:.2f}"]
                for r in rows
            ],
        )
    )
    measured = empirical_random_routing_steps(args.num_pes, trials=3)
    print(
        f"\nmeasured random-permutation routing at N = {args.num_pes}: "
        f"hypercube {measured['hypercube_mean_steps']:.1f} steps, "
        f"degree-log hypermesh {measured['hypermesh_mean_steps']:.1f} steps"
    )


def _cmd_shapes(args: argparse.Namespace) -> None:
    from .core import map_fft
    from .hardware import link_bandwidth
    from .networks import Hypermesh, Hypermesh2D

    print("== 4K-PE hypermesh shapes (Section IV: '8^4, 16^3 and 64^2 ...') ==")
    rows = []
    for base, dims in ((8, 4), (16, 3), (64, 2)):
        hm = Hypermesh2D(64) if dims == 2 else Hypermesh(base, dims)
        mapping = map_fft(hm)
        bw = link_bandwidth(hm, GAAS_1992)
        step = GAAS_1992.packet_bits / bw
        rows.append(
            [
                f"{base}^{dims}",
                mapping.butterfly_steps,
                mapping.bitrev_steps,
                mapping.total_steps,
                format_time(step),
                format_time(mapping.total_steps * step),
            ]
        )
    print(
        format_table(
            ["shape", "butterfly", "bitrev", "total steps", "per step", "comm time"],
            rows,
        )
    )
    print("the 2D shape the paper picked is fastest (wide links + 3-step bitrev)")


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import EXPERIMENTS, run_all, run_experiment

    if args.experiment_id.lower() == "all":
        # The registry sweep runs as a campaign: isolated worker processes,
        # so one crashing experiment cannot take the sweep down.
        result = run_all(workers=getattr(args, "workers", 1))
        failures = 0
        for record in result.records:
            eid = record.params["experiment_id"]
            title = EXPERIMENTS[eid][0]
            reproduced = (
                record.ok
                and isinstance(record.payload, dict)
                and record.payload.get("reproduced") is True
            )
            status = "REPRODUCED" if reproduced else "FAILED"
            print(f"{eid:4s} {status:10s} {title}")
            if not reproduced:
                failures += 1
                if record.traceback:
                    print(record.traceback, file=sys.stderr)
        if failures:
            print(f"{failures} experiments failed to reproduce", file=sys.stderr)
            return 1
        return 0
    try:
        result = run_experiment(args.experiment_id)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(f"{result.experiment_id}: {result.title}")
    print(f"reproduced: {result.reproduced}")
    for key, value in result.details.items():
        print(f"  {key}: {value}")
    return 0 if result.reproduced else 1


def _load_campaign_spec(ref: str):
    """Resolve a campaign reference: a built-in name or a spec-JSON path."""
    from pathlib import Path

    from .campaign import CampaignSpec, builtin_campaign

    if ref.endswith(".json") or Path(ref).exists():
        return CampaignSpec.load(ref)
    return builtin_campaign(ref)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import ResultStore, format_status_table, run_campaign

    try:
        spec = _load_campaign_spec(args.spec)
    except (KeyError, OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = ResultStore.for_campaign(spec.name, args.store)

    def progress(record) -> None:
        source = "cache" if record.cache_hit else f"worker {record.worker_id}"
        print(f"  [{record.status:>6s}] {record.label}  ({source})")

    print(
        f"== campaign {spec.name}: {len(spec)} tasks, "
        f"{args.workers} worker(s), store {store.root} =="
    )
    result = run_campaign(
        spec,
        store,
        workers=args.workers,
        task_timeout=args.timeout,
        retries=args.retries,
        reuse=not args.force,
        progress=progress,
    )
    s = result.summary
    print(format_status_table(result.records))
    print(
        f"{s.ok}/{s.total} ok, {s.failed} failed, {s.cache_hits} cache hits, "
        f"{s.executed} executed in {s.wall_seconds:.2f}s "
        f"(task time {s.task_seconds:.2f}s)"
    )
    if not result.ok:
        for record in result.records:
            if not record.ok:
                print(f"-- {record.label} [{record.failure_kind}] --", file=sys.stderr)
                print(record.traceback, file=sys.stderr)
        return 1
    return 0


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign import ResultStore

    store = ResultStore.for_campaign(args.name, args.store)
    spec = store.read_spec()
    if spec is None:
        print(f"error: no campaign named {args.name!r} under {args.store}",
              file=sys.stderr)
        return 2
    records = {r.task_hash: r for r in store.records()}
    ok = sum(1 for r in records.values() if r.ok)
    failed = sum(1 for r in records.values() if not r.ok)
    pending = [t for t in spec.tasks if t.task_hash not in records or
               not records[t.task_hash].ok]
    print(f"campaign {spec.name}: {len(spec)} tasks")
    print(f"  ok: {ok}  failed: {failed}  "
          f"to run on resume: {len(pending)}")
    for task in pending:
        record = records.get(task.task_hash)
        why = f"failed ({record.failure_kind})" if record else "not started"
        print(f"  pending: {task.label}  [{why}]")
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    import json

    from .campaign import ResultStore, campaign_report, write_report

    store = ResultStore.for_campaign(args.name, args.store)
    spec = store.read_spec()
    if spec is None:
        print(f"error: no campaign named {args.name!r} under {args.store}",
              file=sys.stderr)
        return 2
    report = campaign_report(spec, store.records())
    if args.output:
        path = write_report(report, args.output)
        print(f"wrote {path}")
    else:
        print(json.dumps(report, indent=2, default=str))
    return 0


def _cmd_campaign_list(args: argparse.Namespace) -> int:
    from .campaign import list_builtin_campaigns

    for name, description in list_builtin_campaigns():
        print(f"{name:20s} {description}")
    return 0


_TRACE_TOPOLOGIES = ("mesh2d", "hypercube", "hypermesh2d")


def _cmd_trace(args: argparse.Namespace) -> int:
    """Route one seeded workload per topology and write a JSONL trace."""
    from pathlib import Path

    from .obs import JsonlTraceFile, LinkUtilizationProbe, Tracer
    from .sim.engine import route_demands
    from .sim.task import TOPOLOGY_BUILDERS, build_topology, build_workload
    from .viz.series import format_table

    if args.target == "all":
        targets = list(_TRACE_TOPOLOGIES)
    elif args.target in TOPOLOGY_BUILDERS:
        targets = [args.target]
    else:
        print(
            f"error: unknown trace target {args.target!r}; expected 'all' or "
            f"one of {sorted(TOPOLOGY_BUILDERS)}",
            file=sys.stderr,
        )
        return 2

    out = Path(args.out)
    for name in targets:
        path = (
            out
            if len(targets) == 1
            else out.with_name(f"{out.stem}-{name}{out.suffix or '.jsonl'}")
        )
        try:
            # Invalid arguments (a non-square n, an unknown workload,
            # arbitration policy, or engine backend) exit 2 with the
            # message on stderr — the documented CLI error convention —
            # instead of escaping as tracebacks.
            topology = build_topology(name, args.n)
            sources, dests = build_workload(args.workload, args.n, args.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        tracer = Tracer(
            f"{name}/{args.workload}/n={args.n}/seed={args.seed}",
            JsonlTraceFile(path),
        )
        probe = LinkUtilizationProbe(topology, sources, dests=dests, tracer=tracer)
        try:
            routed = route_demands(
                topology,
                list(zip(sources, dests)),
                arbitration=args.arbitration,
                backend=args.backend,
                on_step=probe,
                timing=True,  # tracing opts into host timing explicitly
            )
        except ValueError as exc:
            tracer.close()
            print(f"error: {exc}", file=sys.stderr)
            return 2
        top = probe.finish()
        tracer.close()
        print(
            f"wrote {path}  ({name}, n={args.n}, {args.workload}: "
            f"{routed.stats.steps} steps, {routed.stats.total_hops} hops)"
        )
        if args.summary:
            rows = [
                [u.channel, u.packets, u.busy_steps, f"{u.utilization:.2f}"]
                for u in top[:5]
            ]
            print(format_table(["channel", "packets", "busy steps", "util"], rows))
    return 0


def _plans_root_error(root) -> str | None:
    """Reject a plan-cache ``--root`` that can never be a disk tier.

    A path that exists but is not a directory would otherwise surface as an
    OS-dependent traceback from the first directory operation; catch it
    here so every ``repro plans`` subcommand exits 2 with a clear message.
    """
    from pathlib import Path

    path = Path(root)
    if path.exists() and not path.is_dir():
        return f"plan-cache root {str(root)!r} exists but is not a directory"
    return None


def _cmd_plans_list(args: argparse.Namespace) -> int:
    """Tabulate the on-disk routing-plan tier, newest blob first."""
    import json

    from .sim.plancache import PlanCache

    if (why := _plans_root_error(args.root)) is not None:
        print(f"error: {why}", file=sys.stderr)
        return 2
    cache = PlanCache(args.root)
    blobs = cache.disk_blobs()
    if not blobs:
        print(f"no plans under {cache.root}")
        return 0
    rows = []
    for path in sorted(blobs, key=lambda p: p.stat().st_mtime, reverse=True):
        size = path.stat().st_size
        try:
            key = json.loads(path.read_text()).get("key", {})
            label = (
                f"{key.get('topology', '?')}  {key.get('router', '?')}/"
                f"{key.get('arbitration', '?')}"
            )
        except (json.JSONDecodeError, OSError):
            label = "(corrupt blob)"
        rows.append([path.stem[:16], f"{size}", label])
    print(format_table(["digest", "bytes", "key"], rows))
    print(f"{len(blobs)} plans, {cache.disk_bytes()} bytes under {cache.root}")
    return 0


def _cmd_plans_clear(args: argparse.Namespace) -> int:
    """Delete every recorded plan blob in the on-disk tier."""
    from .sim.plancache import PlanCache

    if (why := _plans_root_error(args.root)) is not None:
        print(f"error: {why}", file=sys.stderr)
        return 2
    cache = PlanCache(args.root)
    removed = cache.clear()
    print(f"removed {removed} plans from {cache.root}")
    return 0


def _cmd_plans_stats(args: argparse.Namespace) -> int:
    """Disk-tier inventory plus this process's cache-traffic counters.

    With ``--trace-out`` the counters are also exported as ``counter``
    events (``plancache.hits``, ``plancache.misses``, ...) in the
    docs/OBSERVABILITY.md JSONL format, so dashboards ingest hit rates the
    same way they ingest engine events.
    """
    from .sim.plancache import PlanCache, process_default

    if (why := _plans_root_error(args.root)) is not None:
        print(f"error: {why}", file=sys.stderr)
        return 2
    cache = PlanCache(args.root)
    # The process default (when installed) holds this process's live
    # traffic; a fresh CLI process reports zeros, which is honest.
    live = process_default() or cache
    counters = live.counters()
    print(f"{'root:':16s}{cache.root}")
    print(f"{'plans:':16s}{len(cache.disk_blobs())}")
    print(f"{'bytes:':16s}{cache.disk_bytes()}")
    for name, value in counters.items():
        print(f"{name + ':':16s}{value}")
    # Cumulative cross-process disk-tier traffic from the locked sidecar
    # (every writer that ever used this root, not just this process).
    for name, value in sorted(cache.persistent_counters().items()):
        print(f"{'disk-' + name + ':':16s}{value}")
    lookups = counters["hits"] + counters["misses"]
    rate = counters["hits"] / lookups if lookups else 0.0
    print(f"{'hit-rate:':16s}{rate:.3f}")
    if args.trace_out:
        from .obs import JsonlTraceFile, Tracer

        with Tracer("plans-stats", JsonlTraceFile(args.trace_out)) as tracer:
            live.emit_counters(tracer)
        print(f"wrote {args.trace_out}")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    """Degraded-mode sweep: routing cost vs fraction of failed links.

    Routes one seeded workload through the chosen topology repeatedly,
    failing a growing fraction of its links (sampled deterministically from
    ``--fault-seed``), and tabulates steps / delivered / dropped / retried
    per fraction.  Hypermesh (hypergraph) machines have nets rather than
    links, so there the sweep degrades 0, 1, 2, ... nets to serialized
    sub-transfers instead.  Partitioned cells are reported as
    ``unroutable`` rows, not errors — the feasibility cliff is the result.
    ``--backend`` picks the degraded engine core (``indexed`` or the
    vectorized ``numpy``/``numba``); every backend is bit-identical, so
    the table is the same — only the wall-clock changes.
    """
    from .faults import FaultModel, UnroutableError
    from .networks.base import ChannelModel
    from .sim.engine import route_demands
    from .sim.task import TOPOLOGY_BUILDERS, build_topology, build_workload
    from .viz.series import format_table

    if args.topology not in TOPOLOGY_BUILDERS:
        print(
            f"error: unknown topology {args.topology!r}; known: "
            f"{sorted(TOPOLOGY_BUILDERS)}",
            file=sys.stderr,
        )
        return 2
    try:
        # Invalid arguments — a node count the topology family rejects, an
        # unknown workload, an out-of-range drop probability or negative
        # retry limit — exit 2 with the message on stderr, like the
        # unknown-topology branch above, rather than as tracebacks.
        topology = build_topology(args.topology, args.n)
        sources, dests = build_workload(args.workload, args.n, args.seed)
        demands = list(zip(sources, dests))
        hypergraph = topology.channel_model is ChannelModel.HYPERGRAPH_NET

        if hypergraph:
            fault_grid = [
                ("degraded-nets", k, FaultModel(
                    seed=args.fault_seed,
                    degraded_nets=frozenset(range(k)),
                    drop_prob=args.drop_prob,
                    retry_limit=args.retry_limit,
                ))
                for k in range(args.max_degraded_nets + 1)
            ]
            axis = "nets degraded"
        else:
            fault_grid = [
                ("link-fraction", frac, FaultModel(
                    seed=args.fault_seed,
                    link_fail_fraction=frac,
                    drop_prob=args.drop_prob,
                    retry_limit=args.retry_limit,
                ))
                for frac in args.fractions
            ]
            axis = "links failed"
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows = []
    for _kind, amount, model in fault_grid:
        label = f"{amount:.2f}" if not hypergraph else str(amount)
        try:
            routed = route_demands(
                topology, demands,
                fault_model=model if model.enabled else None,
                backend=args.backend,
            )
        except UnroutableError as exc:
            rows.append([label, "unroutable", "-", "-", "-", str(exc)])
            continue
        except ValueError as exc:
            # An unknown or fault-incapable backend exits 2 with the
            # message on stderr, like every other invalid argument here.
            print(f"error: {exc}", file=sys.stderr)
            return 2
        s = routed.stats
        rows.append(
            [label, s.steps, s.delivered, s.dropped, s.retried, ""]
        )
    print(
        f"{args.topology} n={args.n} {args.workload} seed={args.seed} "
        f"fault-seed={args.fault_seed} drop-prob={args.drop_prob} "
        f"backend={args.backend}"
    )
    print(format_table(
        [axis, "steps", "delivered", "dropped", "retried", "note"], rows
    ))
    return 0


#: Staged (SIMD machine) workloads ``repro certify`` can certify alongside
#: the routed workloads of :data:`repro.sim.task.WORKLOAD_BUILDERS`.
CERTIFY_STAGED_WORKLOADS = ("systolic", "hyper-systolic", "ape-fft")


def _certify_cell(topology_name: str, n: int, workload: str, seed: int) -> dict:
    """One certification cell: route/run the workload, certify its steps.

    Returns the certified payload (``steps``/``bound``/``bound_ratio``/
    ``bound_kind``); raises :class:`repro.bounds.BoundViolation` when the
    floor is undercut.
    """
    from .algos.hypersystolic import run_commavoiding_task
    from .bounds import certify_program
    from .fft.ape import build_ape_fft_program, parallel_fft_ape
    from .sim.task import build_topology, run_routing_task

    if workload == "ape-fft":
        import numpy as np

        topology = build_topology(topology_name, n)
        rng = np.random.default_rng(seed + n)
        samples = rng.standard_normal(n)
        result = parallel_fft_ape(topology, samples)
        assert np.allclose(result.spectrum, np.fft.fft(samples))
        cert = certify_program(
            topology,
            build_ape_fft_program(topology),
            result.data_transfer_steps,
            label=f"ape-fft/{topology_name}/n={n}",
        )
        return {
            "steps": result.data_transfer_steps,
            "bound": cert.bound,
            "bound_ratio": cert.ratio,
            "bound_kind": cert.binding,
        }
    if workload in ("systolic", "hyper-systolic"):
        payload = run_commavoiding_task(
            {"topology": topology_name, "n": n, "method": workload, "seed": seed}
        )
        return {
            "steps": payload["steps"],
            "bound": payload["bound"],
            "bound_ratio": payload["bound_ratio"],
            "bound_kind": "superstep-sum",
        }
    payload = run_routing_task(
        {
            "topology": topology_name,
            "n": n,
            "workload": workload,
            "seed": seed,
            "certify": True,
        }
    )
    return {
        "steps": payload["steps"],
        "bound": payload["bound"],
        "bound_ratio": payload["bound_ratio"],
        "bound_kind": payload["bound_kind"],
    }


def _cmd_certify(args: argparse.Namespace) -> int:
    """Certified-bounds sweep: achieved steps vs their analytic floors.

    Every (topology, n, workload) cell is routed (or, for the staged
    workloads, executed on the SIMD machine) and its measured step count
    certified against the :mod:`repro.bounds` floor.  A cell that
    undercuts its floor prints a ``VIOLATION`` row and the command exits
    1 — this is CI's cert-gate.  Unknown names exit 2 with the message on
    stderr, like every other invalid argument.
    """
    from .bounds import BoundViolation
    from .sim.task import TOPOLOGY_BUILDERS, WORKLOAD_BUILDERS
    from .viz.series import format_table

    known_workloads = sorted(WORKLOAD_BUILDERS) + list(CERTIFY_STAGED_WORKLOADS)
    for topology_name in args.topologies:
        if topology_name not in TOPOLOGY_BUILDERS:
            print(
                f"error: unknown topology {topology_name!r}; known: "
                f"{sorted(TOPOLOGY_BUILDERS)}",
                file=sys.stderr,
            )
            return 2
    for workload in args.workloads:
        if workload not in known_workloads:
            print(
                f"error: unknown workload {workload!r}; known: "
                f"{known_workloads}",
                file=sys.stderr,
            )
            return 2

    rows = []
    violations = 0
    for topology_name in args.topologies:
        for n in args.sizes:
            for workload in args.workloads:
                try:
                    cell = _certify_cell(topology_name, n, workload, args.seed)
                except ValueError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
                except BoundViolation as exc:
                    violations += 1
                    cert = exc.certificate
                    rows.append(
                        [topology_name, n, workload, cert.achieved,
                         cert.bound, "-", "VIOLATION"]
                    )
                    continue
                ratio = cell["bound_ratio"]
                rows.append(
                    [topology_name, n, workload, cell["steps"], cell["bound"],
                     "-" if ratio is None else f"{ratio:.2f}",
                     cell["bound_kind"]]
                )
    print(f"certified-bounds sweep  seed={args.seed}")
    print(format_table(
        ["topology", "n", "workload", "achieved", "bound", "ratio", "binding"],
        rows,
    ))
    if violations:
        print(
            f"error: {violations} cell(s) undercut their analytic floor",
            file=sys.stderr,
        )
        return 1
    print("every cell holds: achieved >= bound")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the routing service until SIGINT/SIGTERM, then drain and exit.

    The serving tier is the on-disk plan cache under ``--root``: cold jobs
    are planned in ``--workers`` kill-on-timeout worker processes and
    recorded there; identical and repeated jobs replay from it without
    touching the engine.  With ``--trace-out`` every request is logged as
    a ``service.request`` JSONL event and the final counters are appended
    as ``counter`` events on shutdown (docs/OBSERVABILITY.md format).
    """
    import asyncio
    import signal

    from .service import RoutingService

    if (why := _plans_root_error(args.root)) is not None:
        print(f"error: {why}", file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    if args.timeout <= 0:
        print("error: --timeout must be > 0 seconds", file=sys.stderr)
        return 2

    tracer = None
    if args.trace_out:
        from .obs import JsonlTraceFile, Tracer

        tracer = Tracer("repro-serve", JsonlTraceFile(args.trace_out))

    async def _main() -> int:
        service = RoutingService(
            args.root,
            max_workers=args.workers,
            capacity=args.capacity,
            default_timeout=args.timeout,
            tracer=tracer,
        )
        try:
            await service.start(args.host, args.port)
        except OSError as exc:
            print(f"error: cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 2
        print(
            f"serving on http://{service.host}:{service.port}  "
            f"(plans {args.root}, {args.workers} worker(s), "
            f"{args.timeout:g}s budget)"
        )
        from .service import ENDPOINTS

        for method, path, _name, _desc in ENDPOINTS:
            print(f"  {method:5s}{path}")
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        print("draining in-flight requests ...")
        await service.shutdown()
        if tracer is not None:
            service.emit_counters(tracer)
        c = service.counters()
        print(
            f"served {c['requests']} requests: {c['warm']} warm, "
            f"{c['cold']} cold, {c['coalesced']} coalesced, "
            f"{c['timeouts']} timeouts"
        )
        return 0

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
        return 0
    finally:
        if tracer is not None:
            tracer.close()
            print(f"wrote {args.trace_out}")


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile one registered benchmark; print top-N hot functions as JSON."""
    import json

    from .obs import list_profile_benchmarks, run_profile

    if args.benchmark == "list":
        for name, description in list_profile_benchmarks():
            print(f"{name:18s} {description}")
        return 0
    try:
        report = run_profile(args.benchmark, top=args.top)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    text = json.dumps(report, indent=2)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    """The one-command paper pipeline: regenerate, check, or list sections."""
    from .paper import (
        check_goldens,
        list_sections,
        run_paper,
        write_goldens,
    )
    from .paper.sections import PROFILES

    if args.list:
        rows = [
            [section, experiments or "-", title]
            for section, experiments, title in list_sections()
        ]
        print(format_table(["section", "experiments", "title"], rows))
        return 0

    try:
        result = run_paper(
            sections=args.sections,
            profile=args.profile,
            root=args.root,
            store_root=args.store,
            workers=args.workers,
            force=args.force,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    for path in result.written:
        print(f"wrote {path}")
    if result.campaign is not None:
        s = result.campaign.summary
        print(
            f"campaign {result.campaign.spec.name}: {s.executed} executed, "
            f"{s.cache_hits} cache hits, {s.failed} failed"
        )
    if not result.ok:
        for section, labels in result.failed_sections.items():
            print(
                f"section {section} failed: tasks {', '.join(labels)}",
                file=sys.stderr,
            )
        return 1

    if args.write_golden:
        paths = write_goldens(result.artifacts, args.root, args.profile,
                              golden_dir=args.golden_root)
        for path in paths:
            print(f"wrote golden {path}")
        return 0

    if args.check:
        report = check_goldens(result.artifacts, args.root, args.profile,
                               golden_dir=args.golden_root)
        print(report.format())
        if report.missing:
            # Distinct from drift: there is nothing to compare against.
            print(
                "error: missing goldens — run `repro paper --profile "
                f"{args.profile} --write-golden` to record them",
                file=sys.stderr,
            )
            return 2
        if not report.ok:
            return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the tables and figures of Szymanski (ICPP 1992).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="Tables 1A/1B/2A/2B")
    p.add_argument("--num-pes", type=int, default=4096)
    p.set_defaults(func=_cmd_tables)

    p = sub.add_parser("section4", help="the 4K-PE worked comparison")
    p.add_argument("--num-pes", type=int, default=4096)
    p.set_defaults(func=_cmd_section4)

    p = sub.add_parser("bisection", help="Section V bisection bandwidths")
    p.add_argument("--num-pes", type=int, default=4096)
    p.set_defaults(func=_cmd_bisection)

    p = sub.add_parser("sweep", help="speedup vs machine size")
    p.add_argument("--max-exponent", type=int, default=10, help="largest 4^k size")
    p.add_argument("--workers", type=int, default=1,
                   help="campaign worker processes for the size grid")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("figures", help="ASCII Figs 1-3")
    p.add_argument("--side", type=int, default=4)
    p.set_defaults(func=_cmd_figures)

    p = sub.add_parser("fft", help="run a verified parallel FFT")
    p.add_argument("--side", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fft)

    p = sub.add_parser("sort", help="run a verified parallel bitonic sort")
    p.add_argument("--side", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_sort)

    p = sub.add_parser("omega", help="Omega network vs hypermesh (Section I)")
    p.add_argument("--num-ports", type=int, default=64)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_omega)

    p = sub.add_parser(
        "universality", help="simulation slowdowns (Section I; [15] vs [13])"
    )
    p.add_argument("--num-pes", type=int, default=256)
    p.set_defaults(func=_cmd_universality)

    p = sub.add_parser(
        "paper",
        help="regenerate every paper artifact into results/paper/ "
        "(--check diffs tables against the goldens)",
        description=(
            "The one-command reproducible paper pipeline: expands the "
            "section registry (repro.paper.sections) into a resumable "
            "campaign, renders every table (markdown + JSON) and figure "
            "into results/paper/<section>/, and with --check diffs each "
            "regenerated table cell-by-cell against the goldens under "
            "results/paper/golden/<profile>/.  See docs/REPRODUCING.md."
        ),
    )
    p.add_argument("--profile", choices=("full", "smoke"), default="full",
                   help="regeneration grid: paper-scale N or a CI-fast grid")
    p.add_argument("--sections", nargs="+", metavar="SECTION",
                   help="regenerate only these sections (see --list)")
    p.add_argument("--list", action="store_true",
                   help="list the registered sections and exit")
    p.add_argument("--check", action="store_true",
                   help="diff regenerated tables against the goldens; "
                   "exit 1 on drift, 2 on missing goldens")
    p.add_argument("--write-golden", action="store_true",
                   help="record the regenerated tables as the new goldens")
    p.add_argument("--root", default="results/paper",
                   help="output directory (default: results/paper)")
    p.add_argument("--golden-root", default=None,
                   help="golden directory (default: <root>/golden/<profile>)")
    p.add_argument("--store", default="results/campaigns",
                   help="campaign result store root (resume/cache)")
    p.add_argument("--workers", type=int, default=1,
                   help="campaign worker processes")
    p.add_argument("--force", action="store_true",
                   help="ignore cached campaign results and re-execute")
    p.set_defaults(func=_cmd_paper)

    p = sub.add_parser(
        "experiment", help="run one registered experiment by ID (or 'all')"
    )
    p.add_argument("experiment_id", help="e.g. E5, or 'all'")
    p.add_argument("--workers", type=int, default=1,
                   help="worker processes for 'all' (isolated per experiment)")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser(
        "campaign",
        help="parallel, resumable, content-addressed experiment campaigns",
    )
    campaign_sub = p.add_subparsers(dest="campaign_command", required=True)

    pc = campaign_sub.add_parser(
        "run", help="run a built-in campaign or a spec-JSON file"
    )
    pc.add_argument("spec", help="built-in name (see 'campaign list') or path")
    pc.add_argument("--workers", type=int, default=1)
    pc.add_argument("--timeout", type=float, default=None,
                    help="per-task wall-clock budget in seconds")
    pc.add_argument("--retries", type=int, default=1,
                    help="extra attempts per failing task")
    pc.add_argument("--store", default="results/campaigns",
                    help="result-store root directory")
    pc.add_argument("--force", action="store_true",
                    help="re-execute tasks even when a stored success exists")
    pc.add_argument("--resume", action="store_true",
                    help="resume an interrupted run (the default; spelled "
                         "out for scripts that want to be explicit)")
    pc.set_defaults(func=_cmd_campaign_run)

    pc = campaign_sub.add_parser("status", help="completed / failed / pending")
    pc.add_argument("name")
    pc.add_argument("--store", default="results/campaigns")
    pc.set_defaults(func=_cmd_campaign_status)

    pc = campaign_sub.add_parser(
        "report", help="aggregate stored records into BENCH-style JSON"
    )
    pc.add_argument("name")
    pc.add_argument("--store", default="results/campaigns")
    pc.add_argument("--output", default=None, help="write JSON here")
    pc.set_defaults(func=_cmd_campaign_report)

    pc = campaign_sub.add_parser("list", help="list built-in campaigns")
    pc.set_defaults(func=_cmd_campaign_list)

    p = sub.add_parser(
        "shapes", help="compare the 8^4 / 16^3 / 64^2 hypermesh shapes"
    )
    p.set_defaults(func=_cmd_shapes)

    p = sub.add_parser(
        "trace",
        help="route a seeded workload and write a JSONL observability trace",
        description=(
            "Write the docs/OBSERVABILITY.md event stream for one routed "
            "workload.  TARGET is a topology (mesh2d, torus2d, hypercube, "
            "hypermesh2d) or 'all' for the paper's three networks; with "
            "'all', one trace file is written per topology."
        ),
    )
    p.add_argument("target", help="topology name, or 'all'")
    p.add_argument("--n", type=int, default=64, help="node count (default 64)")
    p.add_argument(
        "--workload",
        default="bit-reversal",
        help="bit-reversal | dense-permutation | sparse-hrelation",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--arbitration", default="overtaking",
                   help="engine arbitration policy (overtaking | fifo)")
    p.add_argument("--backend", default="indexed",
                   help="engine backend (indexed | numpy | numba | cupy); "
                        "all are bit-identical, this only changes routing "
                        "speed (cupy is fault-free only)")
    p.add_argument("--out", default="trace.jsonl",
                   help="trace path ('all' appends -<topology> to the stem)")
    p.add_argument("--summary", action="store_true",
                   help="also print the top-5 most-congested links/nets")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "plans",
        help="inspect the content-addressed routing-plan cache",
        description=(
            "Manage the on-disk tier of repro.sim.plancache "
            "(results/plans by default): recorded routing schedules keyed "
            "by topology, demands, router, arbitration, fault-model "
            "fingerprint, and engine schema."
        ),
    )
    plans_sub = p.add_subparsers(dest="plans_command", required=True)

    pp = plans_sub.add_parser("list", help="list recorded plan blobs")
    pp.add_argument("--root", default="results/plans",
                    help="disk-tier directory (default results/plans)")
    pp.set_defaults(func=_cmd_plans_list)

    pp = plans_sub.add_parser("clear", help="delete every recorded plan")
    pp.add_argument("--root", default="results/plans")
    pp.set_defaults(func=_cmd_plans_clear)

    pp = plans_sub.add_parser(
        "stats", help="inventory + hit/miss counters (optionally as events)"
    )
    pp.add_argument("--root", default="results/plans")
    pp.add_argument("--trace-out", default=None,
                    help="also export the counters as JSONL counter events")
    pp.set_defaults(func=_cmd_plans_stats)

    p = sub.add_parser(
        "faults",
        help="degraded-mode sweep: routing cost vs failed links/nets",
        description=(
            "Route one seeded workload through a topology with a growing "
            "seeded fraction of its links failed (degraded nets for the "
            "hypermesh) and tabulate steps, delivered, dropped, and "
            "retried per fraction.  See docs/FAULTS.md."
        ),
    )
    p.add_argument("--topology", default="mesh2d",
                   help="mesh2d / torus2d / hypercube / hypermesh2d")
    p.add_argument("--n", type=int, default=64, help="node count")
    p.add_argument("--workload", default="dense-permutation",
                   help="dense-permutation / bit-reversal / sparse-hrelation")
    p.add_argument("--seed", type=int, default=99, help="workload seed")
    p.add_argument("--fault-seed", type=int, default=99,
                   help="seed for the sampled link-failure sets")
    p.add_argument("--fractions", type=float, nargs="+",
                   default=[0.0, 0.05, 0.1, 0.2, 0.3],
                   help="link-failure fractions to sweep (point-to-point)")
    p.add_argument("--max-degraded-nets", type=int, default=3,
                   help="sweep 0..K degraded nets (hypermesh only)")
    p.add_argument("--drop-prob", type=float, default=0.0,
                   help="per-transmission intermittent drop probability")
    p.add_argument("--retry-limit", type=int, default=None,
                   help="failed transmissions before a packet is dropped")
    p.add_argument("--backend", default="indexed",
                   help="degraded engine backend (indexed | numpy | numba); "
                        "bit-identical, this only changes routing speed")
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "certify",
        help="certified-bounds sweep: achieved steps vs analytic floors",
        description=(
            "Run every (topology, n, workload) cell and certify its "
            "measured step count against the repro.bounds analytic lower "
            "bound (bisection / distance / ports / work, and the "
            "superstep-sum for staged workloads).  Exits 1 on any "
            "achieved < bound cell.  See docs/BOUNDS.md."
        ),
    )
    p.add_argument("--topologies", nargs="+",
                   default=["mesh2d", "torus2d", "hypercube", "hypermesh2d"],
                   help="topology grid (default: all four families)")
    p.add_argument("--sizes", type=int, nargs="+", default=[16, 64],
                   help="node counts (square powers of two fit every family)")
    p.add_argument("--workloads", nargs="+",
                   default=["dense-permutation", "bit-reversal",
                            "sparse-hrelation", "systolic", "hyper-systolic",
                            "ape-fft"],
                   help="routed workloads (repro.sim.task) and staged ones "
                        "(systolic / hyper-systolic / ape-fft)")
    p.add_argument("--seed", type=int, default=99, help="workload seed")
    p.set_defaults(func=_cmd_certify)

    p = sub.add_parser(
        "serve",
        help="routing-as-a-service: async HTTP API over the plan cache",
        description=(
            "Run the repro.service HTTP server: POST /v1/route submits a "
            "routing job, GET /v1/plans/{digest} fetches a recorded plan, "
            "GET /v1/stats and /v1/healthz report counters and liveness.  "
            "The on-disk plan cache under --root is the serving tier; "
            "identical concurrent jobs are coalesced into one computation.  "
            "Stops gracefully (drains in-flight requests) on SIGINT/SIGTERM."
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="listen port (0 picks an ephemeral port)")
    p.add_argument("--root", default="results/plans",
                   help="plan-cache disk tier (default results/plans)")
    p.add_argument("--workers", type=int, default=2,
                   help="bounded worker processes for cold plan computations")
    p.add_argument("--capacity", type=int, default=256,
                   help="entries held by the in-process warm LRU tier")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="default per-request budget in seconds (504 + worker "
                        "kill on expiry)")
    p.add_argument("--trace-out", default=None,
                   help="write service.request events + final counters as "
                        "JSONL here")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "profile",
        help="cProfile a registered benchmark, top-N hot functions as JSON",
    )
    p.add_argument("benchmark", help="benchmark name, or 'list'")
    p.add_argument("--top", type=int, default=15, help="functions to report")
    p.add_argument("--output", default=None, help="write the JSON here")
    p.set_defaults(func=_cmd_profile)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args) or 0)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
