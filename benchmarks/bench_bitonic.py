"""E10 — the [13] bitonic-sort cross-check (Section IV-A).

Published: hypermesh 12.3x faster than the 2D mesh and 6.47x faster than the
hypercube for a 4K-key bitonic sort.  The hypercube ratio is pure
normalization and reproduces (6.5x); the mesh ratio depends on [13]'s mesh
mapping, which this paper does not specify — with the row-major shift mapping
used here the model gives ~19.8x (see EXPERIMENTS.md).
"""

import numpy as np
import pytest
from conftest import emit

from repro.core.complexity import NetworkKind
from repro.models import bitonic_comparison, bitonic_steps
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.sort import parallel_bitonic_sort
from repro.viz import format_table, format_time


def test_bitonic_4k_model(benchmark):
    cmp_ = benchmark(bitonic_comparison)
    rows = [
        [
            k.value,
            f"{cmp_.times[k].steps:g}",
            format_time(cmp_.times[k].step_time),
            format_time(cmp_.times[k].total),
        ]
        for k in (NetworkKind.MESH_2D, NetworkKind.HYPERCUBE, NetworkKind.HYPERMESH_2D)
    ]
    emit(
        "Bitonic sort, 4K keys on 4K PEs (model)",
        format_table(["network", "steps", "per step", "total"], rows)
        + f"\nspeedups: {cmp_.speedup_vs_mesh:.1f}x vs mesh "
        "(paper quotes [13]: 12.3x — mapping-dependent, see EXPERIMENTS.md), "
        f"{cmp_.speedup_vs_hypercube:.2f}x vs hypercube (paper: 6.47x)",
    )
    assert cmp_.speedup_vs_hypercube == pytest.approx(6.47, abs=0.1)
    assert 10 < cmp_.speedup_vs_mesh < 30


def test_bitonic_pass_counts(benchmark):
    counts = benchmark(
        lambda: {
            k: bitonic_steps(k, 4096)
            for k in (
                NetworkKind.MESH_2D,
                NetworkKind.HYPERCUBE,
                NetworkKind.HYPERMESH_2D,
            )
        }
    )
    emit(
        "Bitonic data-transfer steps at N = 4096",
        "\n".join(f"{k.value}: {v:g}" for k, v in counts.items()),
    )
    assert counts[NetworkKind.HYPERCUBE] == 78  # log N (log N + 1) / 2
    assert counts[NetworkKind.HYPERMESH_2D] == 78
    assert counts[NetworkKind.MESH_2D] == 618


def test_bitonic_executed_256_keys(benchmark, rng):
    """Execute the sort end to end on all three networks at N = 256 and
    confirm the measured step ordering."""

    def run():
        keys = rng.normal(size=256)
        out = {}
        for topo in (Mesh2D(16), Hypercube(8), Hypermesh2D(16)):
            result = parallel_bitonic_sort(topo, keys)
            assert np.array_equal(result.keys, np.sort(keys))
            out[type(topo).__name__] = result.data_transfer_steps
        return out

    steps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Executed bitonic sort at N = 256 (steps)",
        "\n".join(f"{k}: {v}" for k, v in steps.items()),
    )
    assert steps["Hypermesh2D"] == steps["Hypercube"] == 36
    assert steps["Mesh2D"] == bitonic_steps(NetworkKind.MESH_2D, 256)
