"""Property-based tests for addressing primitives."""

from hypothesis import given
from hypothesis import strategies as st

from repro.networks.addressing import (
    bit_reverse,
    from_mixed_radix,
    gray_code,
    gray_decode,
    hamming_distance,
    swap_bits,
    to_mixed_radix,
)


@given(st.integers(0, 14), st.data())
def test_bit_reverse_involution(width, data):
    value = data.draw(st.integers(0, (1 << width) - 1))
    assert bit_reverse(bit_reverse(value, width), width) == value


@given(st.integers(1, 14), st.data())
def test_bit_reverse_is_bijection_sample(width, data):
    a = data.draw(st.integers(0, (1 << width) - 1))
    b = data.draw(st.integers(0, (1 << width) - 1))
    if a != b:
        assert bit_reverse(a, width) != bit_reverse(b, width)


@given(st.integers(0, 2**20))
def test_gray_roundtrip(value):
    assert gray_decode(gray_code(value)) == value


@given(st.integers(0, 2**20 - 1))
def test_gray_neighbors(value):
    assert hamming_distance(gray_code(value), gray_code(value + 1)) == 1


@given(st.integers(0, 2**16), st.integers(0, 15), st.integers(0, 15))
def test_swap_bits_involution(value, i, j):
    assert swap_bits(swap_bits(value, i, j), i, j) == value


@given(st.integers(0, 2**16), st.integers(0, 2**16), st.integers(0, 2**16))
def test_hamming_triangle_inequality(a, b, c):
    assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)


@st.composite
def radices_and_value(draw):
    radices = tuple(
        draw(st.integers(1, 9)) for _ in range(draw(st.integers(1, 5)))
    )
    total = 1
    for r in radices:
        total *= r
    value = draw(st.integers(0, total - 1))
    return radices, value


@given(radices_and_value())
def test_mixed_radix_roundtrip(case):
    radices, value = case
    digits = to_mixed_radix(value, radices)
    assert from_mixed_radix(digits, radices) == value
    assert len(digits) == len(radices)
    assert all(0 <= d < r for d, r in zip(digits, radices))


@given(radices_and_value())
def test_mixed_radix_ordering(case):
    # Lexicographic digit order (MSD first) must match numeric order.
    radices, value = case
    if value > 0:
        assert to_mixed_radix(value - 1, radices) < to_mixed_radix(value, radices)
