"""Pluggable routing-engine backends: one arbitration contract, several cores.

The engine's observable behaviour is contractual — bit-identical
``CommSchedule`` step dicts, bit-identical :class:`~repro.sim.stats.
RoutingStats`, and therefore bit-identical plan-cache blobs — no matter
which core computed them.  This module holds the backend seam:

``"indexed"`` (default)
    The production loop in :func:`repro.sim.engine._route_core`: active-node
    worklist, intrusive linked-list queues, per-packet hop caches.  Python
    control flow, O(in-flight) per step.

``"numpy"``
    The structure-of-arrays core in this module: packet positions,
    destinations, next hops, and the queue priority order held in flat
    ``int64`` arrays and advanced whole-steps at a time.  Channel
    arbitration becomes a stable argsort (first proposal per channel code
    wins), hypergraph inject/deliver arbitration an iterated round of the
    same kernel, and the FIFO queue discipline one stable argsort of the
    survivor ordering per step.

``"numba"``
    The same structure-of-arrays step loop with its hottest kernel (the
    first-claim-wins mask) compiled by :mod:`numba`.  Optional: resolving
    it without numba installed raises a clear :class:`ValueError`, and the
    test suite skips it when the package is missing.

Every backend must reproduce the seed loop in :mod:`repro.sim._reference`
exactly — same grant order (so cached plans record identical insertion
order), same ``blocked_moves`` accounting, same error messages.  The
equivalence suite (``tests/sim/test_backends.py``) and the differential
fuzz harness (``tests/properties/test_engine_fuzz.py``) enforce this;
``benchmarks/bench_engine_backends.py`` re-checks it per benchmark row
while recording the per-backend ``BENCH_engine.json`` artifact.

Why the arbitration vectorizes
------------------------------

The reference sweep proposes in priority order (node index, then FIFO
position) and claims a channel **only when a move is granted**.  Under the
default ``"overtaking"`` policy every queued packet proposes exactly once
per step, so on point-to-point networks the grant set is simply "the first
proposal in priority order for each directed link" — computable with one
stable argsort over link codes.  On hypergraph networks a proposal must be
first on *two* codes at once (net inject port and net deliver port), which
a single pass cannot decide: a packet that loses one code to an
earlier-denied packet may still win.  Iterating rounds — grant every
remaining proposal that is first on both codes among the remaining, deny
(and count) the ones that conflict with a grant, repeat — reproduces the
sequential sweep exactly and terminates because the earliest remaining
proposal always wins both its codes.  ``"fifo"`` arbitration is genuinely
sequential (a denial silences the rest of that node's queue, which can
un-deny later channels), so it stays a Python loop over the
priority-ordered proposals; FIFO runs trade the vector win for exactness.
"""

from __future__ import annotations

import importlib.util
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Sequence

import numpy as np

from ..networks.base import ChannelModel, HypergraphTopology, Topology
from .routers import Router
from .schedule import ScheduleError
from .stats import RoutingStats

__all__ = [
    "BackendSpec",
    "ENGINE_BACKENDS",
    "available_backends",
    "degraded_backends",
    "resolve_backend",
    "resolve_degraded_backend",
    "numpy_route_core",
]


@dataclass(frozen=True)
class BackendSpec:
    """One engine backend's registry entry.

    ``degraded`` records whether the backend also implements the
    fault-injected (``fault_model=``) execution path; the generated
    backend table in docs/API.md renders this column, and
    :func:`resolve_degraded_backend` consults it for its error message.
    """

    description: str
    degraded: bool


#: Registry of engine backends: name -> :class:`BackendSpec`.  The
#: ``docs/API.md`` backend table is generated from this mapping by
#: ``tools/check_docs.py`` (drift-checked in CI), so edit entries here
#: and run ``python tools/check_docs.py --write``.
ENGINE_BACKENDS: dict[str, BackendSpec] = {
    "indexed": BackendSpec(
        "default — the indexed Python arbitration loop in "
        "`repro.sim.engine` (active-node worklist, linked-list queues, "
        "per-packet hop caches)",
        degraded=True,
    ),
    "numpy": BackendSpec(
        "structure-of-arrays core: positions, hops, and queue order in "
        "flat `int64` arrays, arbitration by stable argsort, whole steps "
        "advanced per NumPy call",
        degraded=True,
    ),
    "numba": BackendSpec(
        "the structure-of-arrays core with its first-claim-wins kernel "
        "JIT-compiled; requires the optional `numba` package and is "
        "skipped when it is missing",
        degraded=True,
    ),
    "cupy": BackendSpec(
        "the structure-of-arrays core with its first-claim-wins kernel "
        "offloaded to a CUDA GPU via the optional `cupy` package; "
        "best-effort — requires cupy *and* a visible device, fault-free "
        "runs only",
        degraded=False,
    ),
}

#: ``next_hop`` returned ``None`` for a queued packet (the router considers
#: it home): mirror the reference sweep's skip-forever.  Same sentinel as
#: the indexed engine's hop cache.
_NO_HOP = -2


def numba_available() -> bool:
    """Whether the optional ``numba`` package can be imported."""
    return importlib.util.find_spec("numba") is not None


def cupy_available() -> bool:
    """Whether ``cupy`` is importable *and* a CUDA device is visible.

    Best-effort by design: any import or driver failure reads as "no
    GPU" rather than an exception, so hosts without CUDA simply don't
    list the backend.
    """
    if importlib.util.find_spec("cupy") is None:
        return False
    try:  # pragma: no cover - needs cupy installed
        import cupy

        return int(cupy.cuda.runtime.getDeviceCount()) > 0
    except Exception:  # pragma: no cover - driver/toolkit failures
        return False


def available_backends() -> tuple[str, ...]:
    """The backends resolvable in this environment, registry order."""
    out = []
    for name in ENGINE_BACKENDS:
        if name == "numba" and not numba_available():
            continue
        if name == "cupy" and not cupy_available():
            continue
        out.append(name)
    return tuple(out)


def degraded_backends() -> tuple[str, ...]:
    """The backends that implement ``fault_model=`` runs, registry order."""
    return tuple(
        name for name in ENGINE_BACKENDS if ENGINE_BACKENDS[name].degraded
    )


def resolve_backend(backend: str) -> Callable:
    """Resolve a backend name to its ``_route_core``-compatible callable.

    Raises :class:`ValueError` for unknown names, and for ``"numba"`` /
    ``"cupy"`` when the optional package (or, for cupy, the GPU) is not
    present — the message names the backends that *are* available so CLI
    and API callers get an actionable error.
    """
    if backend == "indexed":
        from .engine import _route_core

        return _route_core
    if backend == "numpy":
        return numpy_route_core
    if backend == "numba":
        if not numba_available():
            raise ValueError(
                "engine backend 'numba' needs the optional numba package, "
                "which is not installed; available backends: "
                f"{available_backends()}"
            )
        return _numba_route_core()
    if backend == "cupy":
        if not cupy_available():
            raise ValueError(
                "engine backend 'cupy' needs the optional cupy package "
                "and a visible CUDA device, which this host does not "
                f"have; available backends: {available_backends()}"
            )
        return _cupy_route_core()  # pragma: no cover - needs a GPU
    raise ValueError(
        f"unknown engine backend {backend!r}; "
        f"expected one of {tuple(ENGINE_BACKENDS)}"
    )


def resolve_degraded_backend(backend: str) -> Callable:
    """Resolve a backend name for a **fault-injected** run.

    The returned callable has :func:`repro.sim.degraded.
    route_core_degraded`'s signature (the fault model and ``on_fault``
    ride along).  Unknown names raise the *same* named :class:`ValueError`
    the fault-free :func:`resolve_backend` raises; a known backend whose
    registry entry says ``degraded=False`` (cupy) raises a ValueError
    naming the degraded-capable backends instead of silently falling back
    to the indexed core.
    """
    if backend == "indexed":
        from .degraded import route_core_degraded

        return route_core_degraded
    if backend == "numpy":
        from .degraded import numpy_degraded_core

        return numpy_degraded_core
    if backend == "numba":
        if not numba_available():
            raise ValueError(
                "engine backend 'numba' needs the optional numba package, "
                "which is not installed; available backends: "
                f"{available_backends()}"
            )
        return _numba_degraded_core()
    if backend in ENGINE_BACKENDS:
        raise ValueError(
            f"engine backend {backend!r} does not support fault_model= "
            f"runs; degraded-capable backends: {degraded_backends()}"
        )
    raise ValueError(
        f"unknown engine backend {backend!r}; "
        f"expected one of {tuple(ENGINE_BACKENDS)}"
    )


def _first_claim_wins(codes: np.ndarray) -> np.ndarray:
    """Grant mask over priority-ordered channel codes: first claim wins.

    ``codes[i]`` is the channel the ``i``-th proposal (in priority order)
    wants; the mask is ``True`` exactly where a proposal is the first for
    its channel.  The stable mergesort keeps equal codes in priority order,
    so "first in the sorted run" is "first proposed".
    """
    m = codes.shape[0]
    perm = np.argsort(codes, kind="mergesort")
    ranked = codes[perm]
    first = np.ones(m, dtype=np.bool_)
    first[1:] = ranked[1:] != ranked[:-1]
    mask = np.zeros(m, dtype=np.bool_)
    mask[perm] = first
    return mask


def numpy_route_core(
    topology: Topology,
    sources: Sequence[int],
    dests: Sequence[int],
    router: Router,
    max_steps: int,
    *,
    arbitration: str = "overtaking",
    on_step=None,
    timing: bool = False,
    _first_claim: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[list[dict[int, int]], RoutingStats]:
    """Structure-of-arrays arbitration loop (the ``"numpy"`` backend).

    Same signature, semantics, and error messages as
    :func:`repro.sim.engine._route_core`; bit-identical output is the
    contract.  Queue state is one array — ``order`` holds the in-flight
    packet ids sorted by (node, FIFO position) — maintained per step by a
    stable argsort of ``concat(stayers in old order, movers in grant
    order)`` on position: stayers keep their relative order ahead of the
    packets that just arrived, exactly the reference's ``deque`` semantics.

    ``_first_claim`` swaps the arbitration kernel (the ``"numba"`` backend
    passes its compiled twin); leave it ``None`` for the NumPy kernel.
    """
    from .engine import ARBITRATION_POLICIES

    if arbitration not in ARBITRATION_POLICIES:
        raise ValueError(
            f"unknown arbitration policy {arbitration!r}; "
            f"expected one of {ARBITRATION_POLICIES}"
        )
    first_claim = _first_claim or _first_claim_wins
    fifo = arbitration == "fifo"
    n = topology.num_nodes
    hypergraph = topology.channel_model is ChannelModel.HYPERGRAPH_NET
    if hypergraph and not isinstance(topology, HypergraphTopology):
        raise TypeError(
            f"hypergraph channel model requires a HypergraphTopology, "
            f"got {type(topology).__name__}"
        )
    next_hop = router.next_hop
    next_hop_array = getattr(router, "next_hop_array", None)
    shared_net = topology.shared_net if hypergraph else None
    shared_net_array = (
        getattr(topology, "shared_net_array", None) if hypergraph else None
    )

    npk = len(sources)
    position = np.array(sources, dtype=np.int64)
    dest = np.array(dests, dtype=np.int64)

    # Priority order: node index ascending, FIFO position within the node.
    # Initial FIFO position is packet-id order (the reference fills queues
    # by ascending pid), so a stable sort of the ascending in-flight pids
    # by position *is* the initial priority order.
    queued = np.flatnonzero(position != dest)
    order = queued[np.argsort(position[queued], kind="mergesort")]
    in_flight = int(order.size)

    stats = RoutingStats()
    delivered = npk - in_flight
    stats.delivered = delivered
    if in_flight:
        stats.max_queue_depth = int(np.bincount(position[order]).max())
    steps: list[dict[int, int]] = []
    blocked = 0
    per_step_seconds = stats.per_step_seconds if timing else None

    while in_flight:
        t0 = perf_counter() if per_step_seconds is not None else 0.0
        if stats.steps >= max_steps:
            raise ScheduleError(
                f"{in_flight} packets undelivered after {max_steps} steps"
            )
        pos = position[order]
        dst = dest[order]
        if next_hop_array is not None:
            # In-flight packets never sit at their destination, so the
            # equal-pair passthrough never fires and every row is a real
            # proposal.
            hops = np.asarray(next_hop_array(pos, dst), dtype=np.int64)
        else:
            hops = np.empty(in_flight, dtype=np.int64)
            pos_list = pos.tolist()
            dst_list = dst.tolist()
            for i in range(in_flight):
                hop = next_hop(pos_list[i], dst_list[i])
                hops[i] = _NO_HOP if hop is None else hop
        proposing = hops != _NO_HOP

        if hypergraph:
            if shared_net_array is not None:
                nets = np.asarray(
                    shared_net_array(pos, np.where(proposing, hops, pos)),
                    dtype=np.int64,
                )
            else:
                nets = np.full(in_flight, -1, dtype=np.int64)
                for i in np.flatnonzero(proposing).tolist():
                    net = shared_net(int(pos[i]), int(hops[i]))
                    nets[i] = -1 if net is None else net
            bad = proposing & (nets < 0)
            if bad.any():
                i = int(np.argmax(bad))
                raise ScheduleError(
                    f"router proposed non-net hop {int(pos[i])} -> "
                    f"{int(hops[i])}"
                )

        # --- arbitration: indices into `order`, ascending == grant order
        if fifo:
            granted_idx, denied = _fifo_arbitrate(
                n, pos, hops, nets if hypergraph else None
            )
            blocked += denied
        elif hypergraph:
            prop_idx = np.flatnonzero(proposing)
            inject = nets * np.int64(n) + pos
            deliver = nets * np.int64(n) + hops
            granted_parts = []
            cand = prop_idx
            while cand.size:
                win = first_claim(inject[cand]) & first_claim(deliver[cand])
                grant = cand[win]
                granted_parts.append(grant)
                rest = cand[~win]
                if rest.size == 0:
                    break
                conflict = np.isin(inject[rest], inject[grant]) | np.isin(
                    deliver[rest], deliver[grant]
                )
                blocked += int(np.count_nonzero(conflict))
                cand = rest[~conflict]
            granted_idx = (
                np.sort(np.concatenate(granted_parts))
                if granted_parts
                else np.empty(0, dtype=np.int64)
            )
        else:
            prop_idx = np.flatnonzero(proposing)
            codes = pos[prop_idx] * np.int64(n) + hops[prop_idx]
            win = first_claim(codes)
            granted_idx = prop_idx[win]
            blocked += int(prop_idx.size - granted_idx.size)

        if granted_idx.size == 0:
            raise ScheduleError(
                f"deadlock: {in_flight} packets queued but none can move"
            )

        # --- commit, in grant order (== priority order among grants)
        grant_pids = order[granted_idx]
        grant_hops = hops[granted_idx]
        position[grant_pids] = grant_hops
        arrived = grant_hops == dest[grant_pids]
        moved = np.zeros(in_flight, dtype=bool)
        moved[granted_idx] = True
        survivors = np.concatenate((order[~moved], grant_pids[~arrived]))
        order = survivors[np.argsort(position[survivors], kind="mergesort")]
        in_flight = int(order.size)
        delivered += int(np.count_nonzero(arrived))

        moves = dict(zip(grant_pids.tolist(), grant_hops.tolist()))
        steps.append(moves)
        stats.steps += 1
        stats.total_hops += len(moves)
        stats.per_step_moves.append(len(moves))
        stats.blocked_moves = blocked
        stats.delivered = delivered
        if in_flight:
            depth = int(np.bincount(position[order]).max())
            if depth > stats.max_queue_depth:
                stats.max_queue_depth = depth
        if per_step_seconds is not None:
            per_step_seconds.append(perf_counter() - t0)
        if on_step is not None:
            on_step(stats.steps - 1, moves, stats)

    return steps, stats


def _fifo_arbitrate(
    n: int,
    pos: np.ndarray,
    hops: np.ndarray,
    nets: np.ndarray | None,
) -> tuple[np.ndarray, int]:
    """Sequential FIFO arbitration over priority-ordered proposals.

    FIFO queueing is non-monotone — a denial silences the rest of that
    node's queue for the step, which can free channels for *later* nodes —
    so it cannot be a one-shot argsort; this mirrors the indexed sweep's
    ``break`` with a per-node skip flag instead.  Exactly one blocked move
    is counted per stopped node (the packet that hit the busy channel);
    the silenced tail never reaches a channel and counts nothing.
    ``None``-hop packets are transparent: skipped without stopping the
    queue, as in the indexed engine.  Returns (granted indices ascending,
    blocked count).
    """
    skip = bytearray(n)
    used_links: set[int] = set()
    used_inject: set[int] = set()
    used_deliver: set[int] = set()
    granted: list[int] = []
    blocked = 0
    pos_list = pos.tolist()
    hop_list = hops.tolist()
    net_list = nets.tolist() if nets is not None else None
    for i in range(len(pos_list)):
        nxt = hop_list[i]
        if nxt == _NO_HOP:
            continue
        node = pos_list[i]
        if skip[node]:
            continue
        if net_list is not None:
            net = net_list[i]
            inject = net * n + node
            deliver = net * n + nxt
            if inject in used_inject or deliver in used_deliver:
                skip[node] = 1
                blocked += 1
                continue
            used_inject.add(inject)
            used_deliver.add(deliver)
        else:
            link = node * n + nxt
            if link in used_links:
                skip[node] = 1
                blocked += 1
                continue
            used_links.add(link)
        granted.append(i)
    return np.asarray(granted, dtype=np.int64), blocked


# --------------------------------------------------------------------------
# The optional numba backend: the same step loop with the first-claim-wins
# kernel compiled.  Resolution is lazy so importing this module never pulls
# numba in; the compiled kernel is cached for the process.

_NUMBA_FIRST_CLAIM = None


def _numba_first_claim():
    global _NUMBA_FIRST_CLAIM
    if _NUMBA_FIRST_CLAIM is None:
        import numba

        @numba.njit(cache=True)
        def first_claim(codes):  # pragma: no cover - needs numba installed
            m = codes.shape[0]
            perm = np.argsort(codes, kind="mergesort")
            mask = np.zeros(m, dtype=np.bool_)
            for j in range(m):
                if j == 0 or codes[perm[j]] != codes[perm[j - 1]]:
                    mask[perm[j]] = True
            return mask

        _NUMBA_FIRST_CLAIM = first_claim
    return _NUMBA_FIRST_CLAIM


def _numba_route_core():
    """Build the ``"numba"`` backend callable (numba must be installed)."""
    kernel = _numba_first_claim()

    def numba_route_core(
        topology,
        sources,
        dests,
        router,
        max_steps,
        *,
        arbitration: str = "overtaking",
        on_step=None,
        timing: bool = False,
    ):
        return numpy_route_core(
            topology,
            sources,
            dests,
            router,
            max_steps,
            arbitration=arbitration,
            on_step=on_step,
            timing=timing,
            _first_claim=kernel,
        )

    return numba_route_core


def _numba_degraded_core():
    """The ``"numba"`` fault backend: the SoA degraded loop with the
    compiled first-claim kernel (numba must be installed)."""
    from .degraded import numpy_degraded_core

    kernel = _numba_first_claim()

    def numba_degraded_core(
        topology,
        sources,
        dests,
        router,
        max_steps,
        fault_model,
        *,
        arbitration: str = "overtaking",
        on_step=None,
        on_fault=None,
        timing: bool = False,
    ):  # pragma: no cover - needs numba installed
        return numpy_degraded_core(
            topology,
            sources,
            dests,
            router,
            max_steps,
            fault_model,
            arbitration=arbitration,
            on_step=on_step,
            on_fault=on_fault,
            timing=timing,
            _first_claim=kernel,
        )

    return numba_degraded_core


# --------------------------------------------------------------------------
# The optional cupy backend: the same step loop with the first-claim-wins
# kernel evaluated on a CUDA device.  Stability of the grant order is
# guaranteed by sorting a composite (code, position) key instead of relying
# on the device sort algorithm being stable; codes here are < n^2 and
# proposal counts are bounded by the packet count, so the composite key
# fits int64 with orders of magnitude to spare.  Everything below is
# exercised only on hosts with a GPU (the CI leg is best-effort,
# continue-on-error) — on this seam what matters is that resolution without
# a device fails loudly and availability reporting stays honest.

_CUPY_FIRST_CLAIM = None


def _cupy_first_claim():  # pragma: no cover - needs cupy + a device
    global _CUPY_FIRST_CLAIM
    if _CUPY_FIRST_CLAIM is None:
        import cupy

        def first_claim(codes):
            dev = cupy.asarray(codes)
            m = dev.shape[0]
            keys = dev * cupy.int64(m) + cupy.arange(m, dtype=cupy.int64)
            perm = cupy.argsort(keys)
            ranked = dev[perm]
            first = cupy.ones(m, dtype=cupy.bool_)
            first[1:] = ranked[1:] != ranked[:-1]
            mask = cupy.zeros(m, dtype=cupy.bool_)
            mask[perm] = first
            return cupy.asnumpy(mask)

        _CUPY_FIRST_CLAIM = first_claim
    return _CUPY_FIRST_CLAIM


def _cupy_route_core():  # pragma: no cover - needs cupy + a device
    """Build the ``"cupy"`` backend callable (cupy + GPU required)."""
    kernel = _cupy_first_claim()

    def cupy_route_core(
        topology,
        sources,
        dests,
        router,
        max_steps,
        *,
        arbitration: str = "overtaking",
        on_step=None,
        timing: bool = False,
    ):
        return numpy_route_core(
            topology,
            sources,
            dests,
            router,
            max_steps,
            arbitration=arbitration,
            on_step=on_step,
            timing=timing,
            _first_claim=kernel,
        )

    return cupy_route_core
