"""Unit tests for the SIMD compute/communicate machine."""

import numpy as np
import pytest

from repro.networks import Hypercube
from repro.routing import butterfly_exchange
from repro.sim import Compute, Exchange, Permute, SimdMachine
from repro.sim.schedule import schedule_from_phases


def _exchange_schedule(cube, bit):
    return schedule_from_phases(cube, [butterfly_exchange(cube.num_nodes, bit)])


class TestExchange:
    def test_received_holds_partner_value(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        captured = {}

        def capture(values, received, idx):
            captured["received"] = received.copy()
            return values

        program = [Exchange(_exchange_schedule(cube, 0)), Compute(capture)]
        values = np.array([10.0, 20.0, 30.0, 40.0])
        machine.run(program, values)
        assert captured["received"].tolist() == [20.0, 10.0, 40.0, 30.0]

    def test_exchange_does_not_move_values(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        values = np.arange(4.0)
        result = machine.run([Exchange(_exchange_schedule(cube, 1))], values)
        assert result.values.tolist() == values.tolist()

    def test_step_accounting(self):
        cube = Hypercube(3)
        machine = SimdMachine(cube)
        program = [
            Exchange(_exchange_schedule(cube, 0)),
            Exchange(_exchange_schedule(cube, 1)),
        ]
        result = machine.run(program, np.zeros(8))
        assert result.data_transfer_steps == 2
        assert result.computation_steps == 0


class TestPermute:
    def test_values_move(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        result = machine.run(
            [Permute(_exchange_schedule(cube, 0))], np.array([1.0, 2.0, 3.0, 4.0])
        )
        assert result.values.tolist() == [2.0, 1.0, 4.0, 3.0]


class TestCompute:
    def test_counts_one_step(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        result = machine.run(
            [Compute(lambda v, r, i: v + 1)], np.zeros(4)
        )
        assert result.computation_steps == 1
        assert result.values.tolist() == [1.0] * 4

    def test_pe_indices_passed(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        result = machine.run(
            [Compute(lambda v, r, i: i.astype(float))], np.zeros(4)
        )
        assert result.values.tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_shape_change_rejected(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        with pytest.raises(ValueError, match="changed the PE count"):
            machine.run([Compute(lambda v, r, i: v[:2])], np.zeros(4))

    def test_op_steps_breakdown(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        result = machine.run(
            [
                Exchange(_exchange_schedule(cube, 0), label="x0"),
                Compute(lambda v, r, i: v, label="c"),
            ],
            np.zeros(4),
        )
        assert result.op_steps == [("x0", 1), ("c", 1)]


class TestGuards:
    def test_value_count_must_match_pes(self):
        machine = SimdMachine(Hypercube(2))
        with pytest.raises(ValueError, match="one value per PE"):
            machine.run([], np.zeros(5))

    def test_wrong_topology_schedule_rejected(self):
        a, b = Hypercube(2), Hypercube(2)
        machine = SimdMachine(a)
        with pytest.raises(ValueError, match="different topology"):
            machine.run([Exchange(_exchange_schedule(b, 0))], np.zeros(4))

    def test_validate_flag_replays_schedules(self):
        from repro.routing import Permutation
        from repro.sim.schedule import CommSchedule

        cube = Hypercube(2)
        # A broken schedule: claims the exchange but moves nothing.
        bogus = CommSchedule(cube, butterfly_exchange(4, 0), ())
        machine = SimdMachine(cube, validate=True)
        from repro.sim.schedule import ScheduleError

        with pytest.raises(ScheduleError):
            machine.run([Exchange(bogus)], np.zeros(4))

    def test_inputs_not_mutated(self):
        cube = Hypercube(2)
        machine = SimdMachine(cube)
        values = np.arange(4.0)
        machine.run([Compute(lambda v, r, i: v * 2)], values)
        assert values.tolist() == [0.0, 1.0, 2.0, 3.0]
