"""Per-step, per-channel utilization and occupancy from the engine's hook.

The paper's headline claims are congestion claims: the hypermesh wins
because every row/column net moves a full partial permutation per step
while the mesh serializes over narrow links (Tables 2A/2B, Section IV).
This module turns the engine's ``on_step`` stream into exactly that
attribution: which channels carried packets at which steps, how busy the
network was, and where queues built up.

Two probes consume ``on_step(step, moves, stats)``:

* :class:`EngineStepProbe` — the canonical step recorder (cumulative
  deliveries/blocks per step); :class:`repro.sim.tracing.StepTracer` is
  its backward-compatible alias.
* :class:`LinkUtilizationProbe` — tracks every packet's position, charges
  each move to the directed link (point-to-point) or net (hypergraph) it
  rode, and emits ``link.util`` / ``link.queue`` events per step plus
  ``link.total`` per channel at :meth:`~LinkUtilizationProbe.finish`.

:func:`trace_schedule` replays an already-built
:class:`~repro.sim.schedule.CommSchedule` through the same probe, so
constructively planned traffic (the FFT's butterfly phases, the 3-step
Clos bit reversal) gets the identical attribution as adaptively routed
traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..networks.base import ChannelModel, HypergraphTopology, Topology
from .events import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sim imports obs)
    from ..sim.schedule import CommSchedule
    from ..sim.stats import RoutingStats

__all__ = [
    "StepRecord",
    "EngineStepProbe",
    "ChannelUsage",
    "LinkUtilizationProbe",
    "trace_schedule",
    "render_step_profile",
]


@dataclass(frozen=True)
class StepRecord:
    """One committed engine step, as observed through ``on_step``."""

    step: int
    moves: dict[int, int]
    delivered: int
    blocked_moves: int


class EngineStepProbe:
    """Collects :class:`StepRecord` events from the engine's ``on_step`` hook.

    Pass an instance as the ``on_step`` argument of
    :func:`~repro.sim.engine.route_permutation` /
    :func:`~repro.sim.engine.route_demands`.  Unlike the returned schedule,
    the probe sees cumulative statistics at each step boundary (deliveries
    and blocked proposals so far), which is what a live progress display or
    a convergence watchdog needs.

    When constructed with a :class:`~repro.obs.events.Tracer`, every step is
    mirrored as an ``engine.step`` event, so the same hook feeds both the
    in-memory records and any attached trace file.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.records: list[StepRecord] = []
        self.tracer = tracer

    def __call__(self, step: int, moves, stats: "RoutingStats") -> None:
        """The ``on_step`` entry point: snapshot the step."""
        self.records.append(
            StepRecord(
                step=step,
                moves=dict(moves),
                delivered=stats.delivered,
                blocked_moves=stats.blocked_moves,
            )
        )
        if self.tracer is not None:
            self.tracer.emit(
                "engine.step",
                step=step,
                moves=len(moves),
                delivered=stats.delivered,
                blocked=stats.blocked_moves,
                max_queue_depth=stats.max_queue_depth,
            )

    def render(self) -> str:
        """Tabulate the recorded steps: moves, cumulative deliveries/blocks."""
        lines = ["step  moves  delivered  blocked(cum)"]
        for rec in self.records:
            lines.append(
                f"{rec.step:4d}  {len(rec.moves):5d}  {rec.delivered:9d}"
                f"  {rec.blocked_moves:12d}"
            )
        return "\n".join(lines)


def render_step_profile(stats: "RoutingStats") -> str:
    """Per-step engine profile from :class:`~repro.sim.stats.RoutingStats`:
    packets moved and, when the run was timed, wall-clock microseconds per
    step.  The '#' bar scales with moves — congestion collapse shows up as
    the bar narrowing long before the run ends."""
    timed = len(stats.per_step_seconds) == len(stats.per_step_moves)
    peak = max(stats.per_step_moves, default=0)
    header = "step  moves" + ("      usec" if timed else "")
    lines = [header]
    for t, moved in enumerate(stats.per_step_moves):
        bar = "#" * max(1, round(20 * moved / peak)) if peak else ""
        cells = f"{t:4d}  {moved:5d}"
        if timed:
            cells += f"  {stats.per_step_seconds[t] * 1e6:8.1f}"
        lines.append(cells + "  " + bar)
    if timed and stats.per_step_seconds:
        lines.append(f"total {stats.elapsed_seconds * 1e3:.3f} ms")
    return "\n".join(lines)


@dataclass(frozen=True)
class ChannelUsage:
    """End-of-run totals for one channel (a directed link or a net)."""

    channel: str
    packets: int
    busy_steps: int
    steps: int

    @property
    def utilization(self) -> float:
        """Fraction of steps in which the channel carried a packet."""
        return self.busy_steps / self.steps if self.steps else 0.0

    def to_dict(self) -> dict:
        return {
            "channel": self.channel,
            "packets": self.packets,
            "busy_steps": self.busy_steps,
            "steps": self.steps,
            "utilization": round(self.utilization, 6),
        }


class LinkUtilizationProbe:
    """Attribute every move to the channel that carried it, step by step.

    Parameters
    ----------
    topology:
        The network being routed on; decides whether moves are charged to
        directed links (``"u->v"``) or hypergraph nets (``"net:k"``), and
        supplies the channel capacity for the utilization denominator.
    sources:
        Starting node of each packet, indexed by packet id.  Defaults to
        the identity placement (packet ``i`` at node ``i``), which is what
        :func:`~repro.sim.engine.route_permutation` and
        :class:`~repro.sim.schedule.CommSchedule` use.
    dests:
        Optional destination of each packet.  When given, delivered packets
        stop counting toward buffer occupancy (``link.queue``); without it
        every packet's position counts.
    tracer:
        Optional :class:`~repro.obs.events.Tracer`; when attached the probe
        emits ``link.util`` and ``link.queue`` per step (plus
        ``engine.step`` when the engine hands it live stats) and
        ``link.total`` per channel at :meth:`finish`.

    The probe is an ``on_step`` callable, so it plugs straight into the
    engine; :func:`trace_schedule` drives it from a recorded schedule
    instead.
    """

    def __init__(
        self,
        topology: Topology,
        sources: Sequence[int] | None = None,
        *,
        dests: Sequence[int] | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.topology = topology
        self.tracer = tracer
        self._hypergraph = topology.channel_model is ChannelModel.HYPERGRAPH_NET
        if self._hypergraph:
            if not isinstance(topology, HypergraphTopology):
                raise TypeError(
                    f"hypergraph channel model requires a HypergraphTopology, "
                    f"got {type(topology).__name__}"
                )
            self._capacity = topology.num_nets()
        else:
            self._capacity = 2 * topology.num_links()  # directed links
        self._positions = (
            list(sources) if sources is not None else list(topology.nodes())
        )
        self._dests = list(dests) if dests is not None else None
        if self._dests is not None and len(self._dests) != len(self._positions):
            raise ValueError(
                f"{len(self._positions)} sources but {len(self._dests)} dests"
            )
        self._packets: dict[str, int] = {}
        self._busy: dict[str, int] = {}
        self.steps_observed = 0
        self._finished = False

    # ------------------------------------------------------------- channels
    def channel_of(self, node: int, nxt: int) -> str:
        """Label of the channel a ``node -> nxt`` move rides."""
        if self._hypergraph:
            net = self.topology.shared_net(node, nxt)
            if net is None:
                raise ValueError(f"no net carries the move {node} -> {nxt}")
            return f"net:{net}"
        return f"{node}->{nxt}"

    # ------------------------------------------------------------- the hook
    def __call__(
        self,
        step: int,
        moves: Mapping[int, int],
        stats: "RoutingStats | None" = None,
    ) -> None:
        """``on_step`` entry point: charge each move, advance positions."""
        used_this_step: set[str] = set()
        for pid, nxt in moves.items():
            node = self._positions[pid]
            channel = self.channel_of(node, nxt)
            self._packets[channel] = self._packets.get(channel, 0) + 1
            used_this_step.add(channel)
            self._positions[pid] = nxt
        for channel in used_this_step:
            self._busy[channel] = self._busy.get(channel, 0) + 1
        self.steps_observed += 1

        if self.tracer is not None:
            if stats is not None:
                self.tracer.emit(
                    "engine.step",
                    step=step,
                    moves=len(moves),
                    delivered=stats.delivered,
                    blocked=stats.blocked_moves,
                    max_queue_depth=stats.max_queue_depth,
                )
            busy = len(used_this_step)
            self.tracer.emit(
                "link.util",
                step=step,
                busy=busy,
                capacity=self._capacity,
                utilization=busy / self._capacity if self._capacity else 0.0,
            )
            occupancy = self._occupancy()
            self.tracer.emit(
                "link.queue",
                step=step,
                max_depth=max(occupancy.values(), default=0),
                mean_depth=(
                    sum(occupancy.values()) / len(occupancy) if occupancy else 0.0
                ),
            )

    def _occupancy(self) -> dict[int, int]:
        """Undelivered packets per occupied node (all packets if no dests)."""
        counts: dict[int, int] = {}
        for pid, node in enumerate(self._positions):
            if self._dests is not None and node == self._dests[pid]:
                continue
            counts[node] = counts.get(node, 0) + 1
        return counts

    # ------------------------------------------------------------- results
    def usage(self) -> list[ChannelUsage]:
        """Per-channel totals so far, most-travelled channel first."""
        rows = [
            ChannelUsage(
                channel=channel,
                packets=self._packets[channel],
                busy_steps=self._busy.get(channel, 0),
                steps=self.steps_observed,
            )
            for channel in self._packets
        ]
        rows.sort(key=lambda u: (-u.packets, -u.busy_steps, u.channel))
        return rows

    def top_congested(self, k: int = 5) -> list[ChannelUsage]:
        """The ``k`` channels that carried the most packets."""
        return self.usage()[:k]

    @property
    def total_packets_moved(self) -> int:
        """Moves charged so far (equals the engine's ``total_hops``)."""
        return sum(self._packets.values())

    def finish(self) -> list[ChannelUsage]:
        """Emit one ``link.total`` event per used channel and return the
        totals.  Idempotent: the events are emitted only once."""
        rows = self.usage()
        if self.tracer is not None and not self._finished:
            for row in rows:
                self.tracer.emit(
                    "link.total",
                    channel=row.channel,
                    packets=row.packets,
                    busy_steps=row.busy_steps,
                    steps=row.steps,
                    utilization=round(row.utilization, 6),
                )
        self._finished = True
        return rows


def trace_schedule(
    schedule: "CommSchedule",
    *,
    tracer: Tracer | None = None,
    probe: LinkUtilizationProbe | None = None,
) -> LinkUtilizationProbe:
    """Replay a recorded schedule through a :class:`LinkUtilizationProbe`.

    Gives planned schedules (FFT butterfly phases, Clos bit reversal) the
    same per-channel attribution adaptively routed traffic gets from the
    engine hook.  Returns the probe with :meth:`~LinkUtilizationProbe.finish`
    already called, so ``trace_schedule(sched).top_congested()`` works
    directly.

    When no tracer and no pre-built probe are supplied (so no per-step
    events need to be emitted), the replay runs as a vectorized NumPy pass
    — packet ids, nodes, and channel codes as ``int64`` arrays with
    ``np.unique`` doing the per-step busy counts — which is an order of
    magnitude faster on multi-thousand-node schedules and produces a probe
    with identical totals to the per-move walk.
    """
    if probe is None and tracer is None:
        fast = _trace_schedule_vectorized(schedule)
        if fast is not None:
            return fast
    if probe is None:
        probe = LinkUtilizationProbe(
            schedule.topology,
            sources=range(schedule.logical.n),
            dests=schedule.logical.destinations.tolist(),
            tracer=tracer,
        )
    for step, moves in enumerate(schedule.steps):
        probe(step, moves, None)
    probe.finish()
    return probe


def _trace_schedule_vectorized(
    schedule: "CommSchedule",
) -> LinkUtilizationProbe | None:
    """Structure-of-arrays replay of a schedule into a fresh probe.

    Returns ``None`` when the schedule cannot be packed into int arrays
    (exotic ids) or the topology offers no batch net lookup — callers then
    fall back to the per-move walk, which is always correct.
    """
    import numpy as np

    topo = schedule.topology
    n = schedule.logical.n
    m = topo.num_nodes
    hypergraph = topo.channel_model is ChannelModel.HYPERGRAPH_NET
    shared_net_array = getattr(topo, "shared_net_array", None)
    if hypergraph and shared_net_array is None:
        return None
    try:
        packed = [
            (
                np.fromiter(step.keys(), dtype=np.int64, count=len(step)),
                np.fromiter(step.values(), dtype=np.int64, count=len(step)),
            )
            for step in schedule.steps
        ]
    except (TypeError, ValueError):
        return None

    probe = LinkUtilizationProbe(
        topo,
        sources=range(n),
        dests=schedule.logical.destinations.tolist(),
    )
    pos = np.arange(n, dtype=np.int64)
    all_codes: list[np.ndarray] = []
    busy: dict[int, int] = {}
    for pids, nodes in packed:
        if len(pids):
            if (pids < 0).any() or (pids >= n).any():
                return None  # malformed ids: the dict walk raises properly
            if (nodes < 0).any() or (nodes >= m).any():
                return None  # out-of-range nodes: match the walk's labels
            cur = pos[pids]
            if hypergraph:
                codes = np.asarray(shared_net_array(cur, nodes), dtype=np.int64)
                if (codes < 0).any():
                    return None  # no shared net: dict walk raises
            else:
                codes = cur * m + nodes
            all_codes.append(codes)
            for code in np.unique(codes).tolist():
                busy[code] = busy.get(code, 0) + 1
            pos[pids] = nodes
    probe.steps_observed = len(packed)
    probe._positions = pos.tolist()
    if all_codes:
        codes, counts = np.unique(np.concatenate(all_codes), return_counts=True)
        if hypergraph:
            labels = [f"net:{c}" for c in codes.tolist()]
        else:
            labels = [f"{c // m}->{c % m}" for c in codes.tolist()]
        probe._packets = dict(zip(labels, counts.tolist()))
        probe._busy = {
            label: busy[code]
            for label, code in zip(labels, codes.tolist())
        }
    probe.finish()
    return probe
