"""Statistics collected while routing packets adaptively.

Single-run contract
-------------------

A :class:`RoutingStats` instance describes **exactly one** engine run: the
engine allocates a fresh instance per :func:`~repro.sim.engine.route_permutation`
/ :func:`~repro.sim.engine.route_demands` call and never writes into a
caller-supplied one.  Code that builds its own instances (aggregators,
tests, custom loops) must not feed one object through two runs — the
high-water counters (``max_queue_depth`` in particular) and the cumulative
lists only ratchet upward, so a reused object silently reports the maximum
over *all* runs it ever saw rather than the last one.  Use
:meth:`RoutingStats.fresh` to get a guaranteed-clean instance, or
:meth:`RoutingStats.reset` to explicitly wipe one between runs.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields

__all__ = ["RoutingStats"]


@dataclass
class RoutingStats:
    """Counters for one adaptive-routing run (see the single-run contract
    in the module docstring: never carry an instance across runs).

    Attributes
    ----------
    steps:
        Data-transfer steps until the last packet was delivered.
    total_hops:
        Channel traversals summed over all packets.
    max_queue_depth:
        Largest number of packets buffered at one node at any instant — the
        word model assumes unbounded buffers; this reports how much was used.
    blocked_moves:
        Proposals denied by channel arbitration, summed over steps (a
        congestion indicator).  Under the engine's ``"fifo"`` arbitration
        policy only the head-of-line denial is counted — packets waiting
        behind it never reach the channel, so they are not proposals.
    delivered:
        Packets that reached their destination.
    dropped:
        Packets permanently removed by the fault model after exhausting
        their retry budget (always 0 on fault-free runs; see
        :mod:`repro.faults` and docs/FAULTS.md).  The conservation
        invariant ``packets == delivered + dropped + in-flight`` holds at
        every committed step.
    retried:
        Granted moves whose transmission failed the fault model's
        intermittent-drop draw, leaving the packet queued to try again
        (always 0 on fault-free runs).
    per_step_moves:
        Packets moved in each step (``len == steps``).
    per_step_seconds:
        Wall-clock seconds the engine spent computing each step — host-side
        instrumentation, **not** part of the word model, and therefore
        excluded from equality comparisons (two runs with identical routing
        behaviour compare equal regardless of machine speed).  Recording is
        **opt-in**: pass ``timing=True`` to the engine entry points to fill
        this list; by default it stays empty so the two clock reads per
        step stay out of the hot loop (the renderers in
        :mod:`repro.sim.tracing` handle both cases).
    """

    steps: int = 0
    total_hops: int = 0
    max_queue_depth: int = 0
    blocked_moves: int = 0
    delivered: int = 0
    dropped: int = 0
    retried: int = 0
    per_step_moves: list[int] = field(default_factory=list)
    per_step_seconds: list[float] = field(default_factory=list, compare=False)

    @classmethod
    def fresh(cls) -> "RoutingStats":
        """A guaranteed-clean instance for one run.

        The explicit factory exists because the dataclass constructor makes
        reuse look harmless: ``stats`` passed through two runs keeps the
        larger ``max_queue_depth`` of the two.  ``RoutingStats.fresh()``
        documents at the call site that a new run gets new counters.
        """
        return cls()

    def reset(self) -> None:
        """Wipe every counter back to its initial value.

        The guard against cross-run contamination: call this (or use
        :meth:`fresh`) before reusing an instance for another run, otherwise
        high-water marks like ``max_queue_depth`` carry over.
        """
        for spec in fields(self):
            if spec.default_factory is not MISSING:
                setattr(self, spec.name, spec.default_factory())
            else:
                setattr(self, spec.name, spec.default)

    @property
    def average_parallelism(self) -> float:
        """Mean packets moved per step."""
        if not self.per_step_moves:
            return 0.0
        return sum(self.per_step_moves) / len(self.per_step_moves)

    @property
    def elapsed_seconds(self) -> float:
        """Total engine wall-clock time across all steps (0.0 if untimed)."""
        return sum(self.per_step_seconds)
