"""Property-based tests for the collective algorithms."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.algos import (
    parallel_allreduce,
    parallel_broadcast,
    parallel_prefix_sum,
    transpose_schedule,
)
from repro.networks import Hypercube, Hypermesh2D, Mesh2D


def value_vectors(widths=(1, 2, 3, 4)):
    return st.sampled_from(widths).flatmap(
        lambda w: arrays(
            np.float64,
            (1 << w,),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
        )
    )


@given(value_vectors())
def test_scan_matches_cumsum(values):
    topo = Hypercube(values.size.bit_length() - 1)
    result = parallel_prefix_sum(topo, values)
    assert np.allclose(result.inclusive, np.cumsum(values), atol=1e-6)


@given(value_vectors())
def test_scan_total_is_sum(values):
    topo = Hypercube(values.size.bit_length() - 1)
    result = parallel_prefix_sum(topo, values)
    assert result.total == np.float64(values.sum()) or abs(
        result.total - values.sum()
    ) <= 1e-6 * max(1.0, abs(values.sum()))


@given(value_vectors())
def test_allreduce_sum_and_max_agree_with_numpy(values):
    topo = Hypercube(values.size.bit_length() - 1)
    assert np.allclose(
        parallel_allreduce(topo, values).values, values.sum(), atol=1e-6
    )
    assert np.allclose(
        parallel_allreduce(topo, values, op=np.maximum).values, values.max()
    )


@given(value_vectors(), st.data())
def test_broadcast_from_any_root(values, data):
    topo = Hypercube(values.size.bit_length() - 1)
    root = data.draw(st.integers(0, values.size - 1))
    result = parallel_broadcast(topo, values, root=root)
    assert np.allclose(result.values, values[root])


@given(st.sampled_from([2, 4]), st.integers(0, 2**32 - 1))
def test_transpose_schedule_moves_matrices(side, seed):
    rng = np.random.default_rng(seed)
    data = rng.normal(size=side * side)
    for topo in (
        Mesh2D(side),
        Hypercube((side * side).bit_length() - 1),
        Hypermesh2D(side),
    ):
        sched = transpose_schedule(topo)
        sched.validate()
        out = sched.logical.apply(data)
        assert np.allclose(
            out.reshape(side, side), data.reshape(side, side).T
        )


@given(st.sampled_from([2, 4, 8]))
def test_collectives_cost_the_butterfly_bill(side):
    n = side * side
    hc = Hypercube(n.bit_length() - 1)
    hm = Hypermesh2D(side)
    zeros = np.zeros(n)
    log_n = n.bit_length() - 1
    for topo in (hc, hm):
        assert parallel_allreduce(topo, zeros).data_transfer_steps == log_n
        assert parallel_prefix_sum(topo, zeros).data_transfer_steps == log_n
