"""Unit tests for the adaptive routing engine."""

import numpy as np
import pytest

from repro.networks import Hypercube, Hypermesh2D, Mesh2D, Torus2D
from repro.routing import Permutation, bit_reversal, vector_reversal
from repro.sim import replay_schedule, route_permutation
from repro.sim.schedule import ScheduleError


class TestBasicRouting:
    def test_identity_takes_zero_steps(self):
        result = route_permutation(Mesh2D(3), Permutation.identity(9))
        assert result.stats.steps == 0
        assert result.schedule.num_steps == 0
        result.schedule.validate()

    def test_neighbor_swap_mesh(self):
        perm = Permutation.from_mapping({0: 1, 1: 0}, 9)
        result = route_permutation(Mesh2D(3), perm)
        assert result.stats.steps == 1
        result.schedule.validate()

    def test_recorded_schedule_always_validates(self, rng):
        for topo in (Mesh2D(4), Torus2D(4), Hypercube(4), Hypermesh2D(4)):
            perm = Permutation.random(16, rng)
            result = route_permutation(topo, perm)
            result.schedule.validate()
            assert result.schedule.logical == perm

    def test_steps_at_least_max_distance(self, rng):
        topo = Mesh2D(4)
        perm = Permutation.random(16, rng)
        result = route_permutation(topo, perm)
        lower = max(
            topo.distance(i, perm[i]) for i in range(16)
        )
        assert result.stats.steps >= lower

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            route_permutation(Mesh2D(3), Permutation.identity(8))


class TestStats:
    def test_hops_equal_total_distance_when_uncongested(self):
        # A single moving packet accrues exactly its distance in hops.
        perm = Permutation.from_mapping({0: 8, 8: 0}, 9)
        result = route_permutation(Mesh2D(3), perm)
        assert result.stats.total_hops == 2 * Mesh2D(3).distance(0, 8)

    def test_delivered_counts_everyone(self, rng):
        perm = Permutation.random(16, rng)
        result = route_permutation(Hypercube(4), perm)
        assert result.stats.delivered == 16

    def test_average_parallelism(self):
        perm = Permutation.from_mapping({0: 1, 1: 0}, 4)
        result = route_permutation(Mesh2D(2), perm)
        assert result.stats.average_parallelism == 2.0

    def test_blocked_moves_counted_under_congestion(self):
        # Packets from (0,0) and (2,0) both turn at (1,0) and then compete
        # for the directed link (1,0) -> (1,1) in the same step: one must
        # lose arbitration.
        perm = Permutation.from_mapping({0: 4, 4: 0, 6: 5, 5: 6}, 9)
        result = route_permutation(Mesh2D(3), perm)
        assert result.stats.blocked_moves > 0
        assert result.stats.max_queue_depth > 1
        result.schedule.validate()

    def test_opposite_direction_movers_never_block(self):
        # Vector reversal on a 1D path: east- and west-bound packets use
        # opposite directed links, so greedy routing never blocks.
        from repro.networks import Mesh

        mesh = Mesh((8,))
        result = route_permutation(mesh, vector_reversal(8))
        assert result.stats.blocked_moves == 0
        assert result.stats.steps == 7  # the corner-interchange distance


class TestPaperFigures:
    def test_mesh_bitrev_steps_4x4(self):
        result = route_permutation(Mesh2D(4), bit_reversal(16))
        # Lower bound: corner interchange 2(side-1) = 6.
        assert result.stats.steps >= 6
        result.schedule.validate()

    def test_hypercube_bitrev_steps(self):
        result = route_permutation(Hypercube(4), bit_reversal(16))
        assert result.stats.steps >= 2  # distance bound for n=4 is ... >= 2
        result.schedule.validate()

    def test_hypermesh_routes_any_permutation_fast(self, rng):
        # Greedy digit routing: close to diameter + small queueing.
        result = route_permutation(Hypermesh2D(4), Permutation.random(16, rng))
        assert result.stats.steps <= 16
        result.schedule.validate()

    def test_torus_bitrev_uses_wraparound(self):
        plain = route_permutation(Mesh2D(8), bit_reversal(64))
        wrapped = route_permutation(Torus2D(8), bit_reversal(64))
        assert wrapped.stats.steps <= plain.stats.steps


class TestGuards:
    def test_max_steps_guard_fires(self):
        perm = vector_reversal(16)
        with pytest.raises(ScheduleError, match="undelivered"):
            route_permutation(Mesh2D(4), perm, max_steps=1)

    def test_replay_schedule_returns_steps(self):
        perm = Permutation.from_mapping({0: 1, 1: 0}, 9)
        sched = route_permutation(Mesh2D(3), perm).schedule
        assert replay_schedule(sched) == sched.num_steps
