"""The hypermesh of Szymanski [12][13] — the paper's proposed network.

A base-``b`` ``n``-dimensional hypermesh arranges ``N = b**n`` PEs in
``n``-dimensional space.  All nodes whose addresses agree in every digit
except digit ``d`` form a **hypergraph net**: a ``b``-way channel that can
realize *any permutation* of packets among its ``b`` members in a single
data-transfer step (it is physically a ``b x b`` crossbar, or several ganged
in parallel — see :mod:`repro.hardware.cost`).

This one-step-permutation capability is what distinguishes the hypermesh
from the spanning-bus hypercubes of Bhuyan/Aggrawal and the spanning-bus
hypermeshes of Scherson, where a dimension is a shared bus that can carry
only one packet at a time; the paper is explicit about this distinction.

Key structural facts used throughout the reproduction:

* distance between two nodes = number of differing digits, so the diameter
  is ``n`` (2 for the 2D hypermesh);
* every node belongs to exactly ``n`` nets (one per dimension);
* there are ``n * N / b`` nets in total (``2 * sqrt(N)`` for the 2D case);
* the 2D hypermesh is **rearrangeable**: any permutation of all ``N``
  packets can be realized in at most 3 data-transfer steps
  (row -> column -> row; property [6] of [12], implemented in
  :mod:`repro.routing.clos`).
"""

from __future__ import annotations

from typing import Sequence

from .addressing import to_mixed_radix, with_digit
from .base import HypergraphTopology

__all__ = ["Hypermesh", "Hypermesh2D", "degree_log_hypermesh_shape"]


class Hypermesh(HypergraphTopology):
    """A base-``b`` ``n``-dimensional hypermesh (``b**n`` PEs).

    Parameters
    ----------
    base:
        Digits per dimension ``b`` (net size); must be >= 2.
    dims:
        Number of dimensions ``n``; must be >= 1.
    """

    name = "hypermesh"

    def __init__(self, base: int, dims: int):
        base = int(base)
        dims = int(dims)
        if base < 2:
            raise ValueError("hypermesh base must be >= 2")
        if dims < 1:
            raise ValueError("hypermesh needs at least one dimension")
        super().__init__(base**dims)
        self._base = base
        self._dims = dims
        self._radices = (base,) * dims
        # Row-major digit strides (MSD first), for arithmetic digit access
        # on hot paths that must not build coordinate tuples.
        self._digit_strides = tuple(base ** (dims - 1 - d) for d in range(dims))
        self._nets: list[tuple[int, ...]] | None = None

    # ----------------------------------------------------------- structure
    @property
    def base(self) -> int:
        """Net size ``b`` — nodes per hypergraph net."""
        return self._base

    @property
    def dims(self) -> int:
        """Number of dimensions ``n``."""
        return self._dims

    @property
    def radices(self) -> tuple[int, ...]:
        """Per-dimension extents — ``(b,) * n``."""
        return self._radices

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Base-``b`` digits of ``node`` (MSD first)."""
        self.validate_node(node)
        return to_mixed_radix(node, self._radices)

    def node_at(self, coords: Sequence[int]) -> int:
        """Node identifier at base-``b`` coordinates ``coords``."""
        from .addressing import from_mixed_radix

        return from_mixed_radix(coords, self._radices)

    def neighbors(self, node: int) -> tuple[int, ...]:
        """All nodes sharing at least one net with ``node``.

        Each of the ``n`` nets contributes its other ``b - 1`` members, and
        the nets of one node intersect only at the node itself, so the count
        is ``n * (b - 1)``.
        """
        self.validate_node(node)
        result = []
        for dim in range(self._dims):
            own = to_mixed_radix(node, self._radices)[dim]
            for d in range(self._base):
                if d != own:
                    result.append(with_digit(node, dim, d, self._radices))
        return tuple(result)

    def distance(self, node_a: int, node_b: int) -> int:
        """Number of differing digits — one net traversal fixes one digit."""
        ca = self.coordinates(node_a)
        cb = self.coordinates(node_b)
        return sum(1 for x, y in zip(ca, cb) if x != y)

    @property
    def diameter(self) -> int:
        """``n`` — all digits may differ."""
        return self._dims

    # ---------------------------------------------------------------- nets
    def net_id(self, dim: int, node: int) -> int:
        """Identifier of the dimension-``dim`` net containing ``node``.

        Nets are numbered ``dim * (N / b) + residual`` where ``residual``
        ranks the fixed digits of the net in row-major order.
        """
        self.validate_node(node)
        if not 0 <= dim < self._dims:
            raise ValueError(f"dimension {dim} out of range [0, {self._dims})")
        digits = list(to_mixed_radix(node, self._radices))
        del digits[dim]
        residual = 0
        for d in digits:
            residual = residual * self._base + d
        return dim * (self.num_nodes // self._base) + residual

    def net_members(self, dim: int, node: int) -> tuple[int, ...]:
        """Members of the dimension-``dim`` net containing ``node``,
        ordered by their digit in dimension ``dim``."""
        self.validate_node(node)
        return tuple(
            with_digit(node, dim, d, self._radices) for d in range(self._base)
        )

    def nets(self) -> list[tuple[int, ...]]:
        """All nets, indexed consistently with :meth:`net_id` (cached)."""
        if self._nets is None:
            nets: list[tuple[int, ...]] = []
            per_dim = self.num_nodes // self._base
            for dim in range(self._dims):
                seen: dict[int, tuple[int, ...]] = {}
                for node in self.nodes():
                    nid = self.net_id(dim, node) - dim * per_dim
                    if nid not in seen:
                        seen[nid] = self.net_members(dim, node)
                nets.extend(seen[i] for i in range(per_dim))
            self._nets = nets
        return self._nets

    def nets_of(self, node: int) -> tuple[int, ...]:
        """The ``n`` net identifiers ``node`` belongs to (one per dimension)."""
        return tuple(self.net_id(dim, node) for dim in range(self._dims))

    def shared_net(self, node_a: int, node_b: int) -> int | None:
        """Closed-form net lookup: two distinct nodes share a net exactly
        when their addresses differ in a single digit, and that digit's
        dimension names the net.  No cache needed, unlike the generic
        :meth:`~repro.networks.base.HypergraphTopology.shared_net`; pure
        digit arithmetic because the simulator calls this once per packet
        hop."""
        self.validate_node(node_a)
        self.validate_node(node_b)
        base = self._base
        shared_dim = -1
        a, b = node_a, node_b
        for dim in range(self._dims - 1, -1, -1):  # LSD-first digit scan
            a, da = divmod(a, base)
            b, db = divmod(b, base)
            if da != db:
                if shared_dim != -1:
                    return None  # differ in two digits: no common net
                shared_dim = dim
        if shared_dim == -1:
            return None  # same node
        # Rank of the fixed digits in row-major order == net_id's residual.
        residual = 0
        for dim, stride in enumerate(self._digit_strides):
            if dim != shared_dim:
                residual = residual * base + (node_a // stride) % base
        return shared_dim * (self._num_nodes // base) + residual

    def shared_net_array(self, nodes_a, nodes_b):
        """Vectorized :meth:`shared_net` over parallel node arrays.

        Returns an ``int64`` array with the shared-net id per pair, or
        ``-1`` where the pair shares no net (differing in zero or two-plus
        digits).  Same digit arithmetic as the scalar closed form, batched
        with NumPy for the replay/validation engine; callers must have
        bounds-checked the nodes (the batch API does no per-element
        validation).
        """
        import numpy as np

        a = np.asarray(nodes_a, dtype=np.int64)
        b = np.asarray(nodes_b, dtype=np.int64)
        base = self._base
        strides = np.asarray(self._digit_strides, dtype=np.int64).reshape(-1, 1)
        da = (a // strides) % base  # shape (dims, len): MSD-first digits
        db = (b // strides) % base
        diff = da != db
        # Exactly one differing digit names the net's dimension; argmax
        # finds it (the row order is irrelevant when only one row is True).
        shared_dim = np.argmax(diff, axis=0)
        residual = np.zeros_like(a)
        for dim in range(self._dims):
            keep = shared_dim != dim
            residual = np.where(keep, residual * base + da[dim], residual)
        net = shared_dim * (self._num_nodes // base) + residual
        return np.where(diff.sum(axis=0) == 1, net, -1)

    def num_nets(self) -> int:
        """``n * N / b`` hypergraph nets."""
        return self._dims * (self.num_nodes // self._base)

    # ------------------------------------------------------------ hardware
    @property
    def node_degree(self) -> int:
        """Ports per PE-node: one per dimension plus the PE itself.

        Note this counts *net ports*, not reachable neighbours; the original
        hypermesh description added an ``n x n`` crossbar at each PE-node to
        switch between dimensions, but Section II notes it can be eliminated
        for SIMD operation, which is the construction costed here.
        """
        return self._dims + 1

    @property
    def num_crossbars(self) -> int:
        """Minimum crossbar ICs: one ``b x b`` crossbar per net.

        The equal-aggregate-bandwidth comparison instead *allocates* the same
        IC count as the competing networks across these nets — see
        :func:`repro.hardware.cost.normalize_networks`.
        """
        return self.num_nets()

    @property
    def crossbar_ports(self) -> int:
        """Port count of the (minimal) per-net crossbar — the base ``b``."""
        return self._base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypermesh(base={self._base}, dims={self._dims})"


class Hypermesh2D(Hypermesh):
    """The paper's square 2D hypermesh: ``side`` rows x ``side`` columns.

    Node ``i`` occupies row ``i // side``, column ``i % side``.  Each row and
    each column is one hypergraph net (``2 * side`` nets), each able to
    permute its ``side`` members in one step; any global permutation takes at
    most 3 steps (:mod:`repro.routing.clos`).
    """

    name = "hypermesh2d"

    def __init__(self, side: int):
        super().__init__(base=side, dims=2)
        self._side = int(side)

    @property
    def side(self) -> int:
        """Hypermesh side length ``sqrt(N)``."""
        return self._side

    def row_col(self, node: int) -> tuple[int, int]:
        """(row, column) of ``node``."""
        return self.coordinates(node)  # type: ignore[return-value]

    def row_net(self, row: int) -> int:
        """Net id of row ``row`` (dimension 0 fixes the row digit ... the
        *row net* varies the column, i.e. dimension 1)."""
        return self.net_id(1, row * self._side)

    def col_net(self, col: int) -> int:
        """Net id of column ``col`` (varies the row, i.e. dimension 0)."""
        return self.net_id(0, col)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypermesh2D(side={self._side})"


def degree_log_hypermesh_shape(num_nodes: int) -> tuple[int, int]:
    """Shape ``(base, dims)`` of the degree-log hypermesh of [13].

    [13] studies hypermeshes whose net size grows like ``log N``; the paper's
    Table 1A quotes its crossbar count ``N / loglog N`` and diameter
    ``log N / loglog N``.  This helper picks the smallest base ``b >= 2``
    that is a power of two, with ``b >= log2(N)`` and ``b**dims == N`` for an
    integral ``dims`` — the standard concrete family realizing those
    asymptotics for power-of-two ``N``.

    Raises
    ------
    ValueError
        If no such factorization exists (e.g. ``N`` whose exponent has no
        suitable divisor).
    """
    from .addressing import ilog2

    n_bits = ilog2(num_nodes)
    target = max(2, n_bits)
    # Try divisors d of n_bits as log2(base), preferring base >= log2(N).
    candidates = sorted(
        (1 << d) for d in range(1, n_bits + 1) if n_bits % d == 0
    )
    for base in candidates:
        if base >= target:
            return base, n_bits // ilog2(base)
    # Fall back to the largest available base (dims = 1, a single crossbar).
    base = candidates[-1]
    return base, n_bits // ilog2(base)
