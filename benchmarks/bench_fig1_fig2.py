"""E8 — Figures 1 and 2: the 2D hypermesh and its PE-node.

The figures are structural; the benchmark regenerates the ASCII renderings
and asserts the structural invariants they depict (net membership, net
count, PE-node port count, absence of the n x n crossbar in the cost model).
"""

from conftest import emit

from repro.networks import Hypermesh2D
from repro.viz import render_hypermesh_2d, render_pe_node


def test_fig1_hypermesh_rendering(benchmark):
    art = benchmark(render_hypermesh_2d, 4)
    emit("Fig. 1: 2D hypermesh (4x4 shown; paper draws the same structure)", art)
    hm = Hypermesh2D(4)
    assert hm.num_nets() == 8
    # Bold lines = nets: every row and every column is one net.
    nets = hm.nets()
    assert sorted(nets[hm.row_net(0)]) == [0, 1, 2, 3]
    assert sorted(nets[hm.col_net(0)]) == [0, 4, 8, 12]
    assert "row net" in art


def test_fig2_pe_node_rendering(benchmark):
    art = benchmark(render_pe_node, 2)
    emit("Fig. 2: PE-node of a 2D hypermesh SIMD machine", art)
    # Section II: the PE-node has one port per dimension and no n x n
    # crossbar; the cost model therefore charges nets only.
    hm = Hypermesh2D(8)
    assert hm.node_degree == 2 + 1  # two net ports + the PE itself
    assert hm.num_crossbars == hm.num_nets()
    assert "no n x n crossbar" in art


def test_fig1_net_structure_scales(benchmark):
    def verify(side=16):
        hm = Hypermesh2D(side)
        nets = hm.nets()
        for node in range(hm.num_nodes):
            row, col = hm.row_col(node)
            owned = hm.nets_of(node)
            assert len(owned) == 2
            members = set(nets[owned[0]]) | set(nets[owned[1]])
            # Fig 1's point: one hop reaches the full row and column.
            assert members == {
                row * side + c for c in range(side)
            } | {r * side + col for r in range(side)}
        return hm.num_nets()

    num_nets = benchmark(verify)
    assert num_nets == 32
