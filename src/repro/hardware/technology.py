"""Technology parameters for the discrete-component comparison (Section IV).

The paper's numeric comparison assumes every network is assembled from
commercially available GaAs crossbar ICs:

* each crossbar has ``K = 64`` IO pins,
* each pin carries ``L = 200 Mbit/s``,
* packets are 128 bits (one complex sample at the word level),
* a long transmission line (~20 feet) adds a 20 ns propagation delay.

All of these are plain inputs to the timing model, captured in the frozen
:class:`Technology` dataclass so ablations can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["Technology", "GAAS_1992", "MBIT", "GBIT", "NANOSECOND"]

#: One megabit per second, in bits/s.
MBIT = 1e6
#: One gigabit per second, in bits/s.
GBIT = 1e9
#: One nanosecond, in seconds.
NANOSECOND = 1e-9


@dataclass(frozen=True)
class Technology:
    """Hardware technology point for the normalized comparison.

    Attributes
    ----------
    crossbar_ports:
        IO pins per crossbar IC — the paper's ``K``.
    pin_bandwidth:
        Bandwidth of one crossbar IO pin in bits/s — the paper's ``L``.
    packet_bits:
        Word-level packet size in bits (indivisible unit of transfer).
    propagation_delay:
        Per-hop transmission-line flush time in seconds; the paper charges it
        only on networks with long lines (hypercube, hypermesh) and treats
        nearest-neighbour mesh lines as free.
    round_pins_down:
        Whether to round fractional pins-per-link down to an integer.  The
        paper deliberately does *not* round ("over-estimates the performance
        of the 2D mesh / hypercube slightly"), so the default is False.
    """

    crossbar_ports: int = 64
    pin_bandwidth: float = 200 * MBIT
    packet_bits: int = 128
    propagation_delay: float = 0.0
    round_pins_down: bool = False

    def __post_init__(self) -> None:
        if self.crossbar_ports < 1:
            raise ValueError("crossbar needs at least one port")
        if self.pin_bandwidth <= 0:
            raise ValueError("pin bandwidth must be positive")
        if self.packet_bits < 1:
            raise ValueError("packets need at least one bit")
        if self.propagation_delay < 0:
            raise ValueError("propagation delay cannot be negative")

    @property
    def aggregate_crossbar_bandwidth(self) -> float:
        """Total IO bandwidth of one crossbar IC, ``K * L`` bits/s."""
        return self.crossbar_ports * self.pin_bandwidth

    def with_propagation_delay(self, seconds: float) -> "Technology":
        """Copy of this technology with a different propagation delay."""
        return replace(self, propagation_delay=seconds)

    def with_packet_bits(self, bits: int) -> "Technology":
        """Copy of this technology with a different packet size."""
        return replace(self, packet_bits=bits)


#: The paper's Section IV technology point: 64x64 GaAs crossbars at
#: 200 Mbit/s per pin, 128-bit packets, no propagation delay (Section IV-A).
GAAS_1992 = Technology()
