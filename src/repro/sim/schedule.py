"""Time-expanded communication schedules.

A :class:`CommSchedule` says exactly which packet crosses which channel at
which data-transfer step — the unit of account of the whole paper.  Both ways
of producing communication are lowered to this one representation:

* *algorithmic* schedules (hypercube butterfly exchanges, the hypermesh
  3-step Clos route, mesh shift exchanges) are constructed directly by
  :mod:`repro.core`, and
* *adaptive* routing (greedy XY on the mesh) records the moves it made
  (:mod:`repro.sim.engine` — whichever backend from
  :mod:`repro.sim.backends` computed them; all are bit-identical by
  contract, down to the insertion order of each step's move dict).

Validation then enforces the word-level hardware constraints uniformly:

* every move is one hop (link traversal / net traversal);
* on point-to-point networks each **directed link** carries at most one
  packet per step;
* on hypergraph networks each node **injects at most one packet into a given
  net** and **receives at most one packet from a given net** per step (the
  crossbar port constraint);
* after the last step every packet sits at its destination.

Packet ``i`` always starts at node ``i`` (one packet per PE — the SIMD
word-level model); its destination is ``logical[i]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..networks.base import (
    ChannelModel,
    HypergraphTopology,
    PointToPointTopology,
    Topology,
)
from ..routing.permutation import Permutation

__all__ = ["CommSchedule", "ScheduleError", "schedule_from_phases"]


class ScheduleError(ValueError):
    """A communication schedule violates the word-level hardware model."""


@dataclass(frozen=True)
class CommSchedule:
    """Moves of ``n`` packets over a number of data-transfer steps.

    Attributes
    ----------
    topology:
        Network the schedule runs on.
    logical:
        The permutation being realized; packet ``i`` starts at node ``i`` and
        must end at ``logical[i]``.
    steps:
        One mapping per data-transfer step: ``{packet_id: node_moved_to}``.
        Packets not mentioned stay where they are for that step.
    """

    topology: Topology
    logical: Permutation
    steps: tuple[Mapping[int, int], ...] = field(default_factory=tuple)

    @property
    def num_steps(self) -> int:
        """Data-transfer steps consumed."""
        return len(self.steps)

    def final_positions(self) -> list[int]:
        """Where each packet ends up after replaying all steps."""
        pos = list(range(self.logical.n))
        for step in self.steps:
            for pid, node in step.items():
                pos[pid] = node
        return pos

    def total_hops(self) -> int:
        """Total channel traversals across all packets and steps."""
        return sum(len(step) for step in self.steps)

    def validate(self) -> None:
        """Raise :class:`ScheduleError` on any hardware-model violation.

        The checks run as NumPy structure-of-arrays passes (packet ids,
        target nodes, and link/net codes as ``int64`` arrays, conflicts
        detected with :func:`np.unique` counts) — an order of magnitude
        faster than the per-move dict walk on multi-thousand-node
        schedules.  Whenever the fast path detects *any* violation, or the
        steps do not pack into integer arrays, it defers to
        :meth:`validate_dictwalk`, so the raised :class:`ScheduleError`
        type and message are exactly the reference implementation's.
        """
        verdict = self._validate_vectorized()
        if verdict is True:
            return
        self.validate_dictwalk()

    def _validate_vectorized(self) -> bool:
        """One vectorized pass over all steps.

        Returns ``True`` when the schedule is provably valid and ``False``
        when it found a violation or could not represent the steps as int
        arrays — in both of the latter cases :meth:`validate_dictwalk` is
        authoritative (and raises the precise error).
        """
        topo = self.topology
        n = self.logical.n
        if n != topo.num_nodes:
            return False
        m = topo.num_nodes
        point_to_point = topo.channel_model is ChannelModel.POINT_TO_POINT
        shared_net_array = getattr(topo, "shared_net_array", None)
        if not point_to_point and shared_net_array is None:
            return False  # no batch net lookup: generic hypergraph topology
        try:
            packed = [
                (
                    np.fromiter(step.keys(), dtype=np.int64, count=len(step)),
                    np.fromiter(step.values(), dtype=np.int64, count=len(step)),
                )
                for step in self.steps
            ]
        except (TypeError, ValueError):
            return False  # exotic packet ids / nodes: dict walk decides

        if point_to_point:
            # Every legal directed hop as a ``u * m + v`` code, sorted for
            # searchsorted membership probes.
            codes = []
            for u, v in topo.links():
                codes.append(u * m + v)
                codes.append(v * m + u)
            link_codes = np.sort(np.asarray(codes, dtype=np.int64))

        pos = np.arange(n, dtype=np.int64)
        for pids, nodes in packed:
            if len(pids) == 0:
                continue
            # Bounds before any fancy indexing (mirrors the dict walk).
            if (pids < 0).any() or (pids >= n).any():
                return False
            if (nodes < 0).any() or (nodes >= m).any():
                return False
            cur = pos[pids]
            if (cur == nodes).any():
                return False  # packet "moves" to its own node
            if point_to_point:
                if link_codes.size == 0:
                    return False  # moves on a linkless topology
                hops = cur * m + nodes
                idx = np.searchsorted(link_codes, hops)
                idx[idx == len(link_codes)] = 0
                if (link_codes[idx] != hops).any():
                    return False  # non-adjacent jump
                if np.unique(hops).size != hops.size:
                    return False  # a directed link carries two packets
            else:
                nets = np.asarray(shared_net_array(cur, nodes), dtype=np.int64)
                if (nets < 0).any():
                    return False  # no shared net
                inject = nets * m + cur
                deliver = nets * m + nodes
                if np.unique(inject).size != inject.size:
                    return False  # a node injects two packets into one net
                if np.unique(deliver).size != deliver.size:
                    return False  # a node receives two from one net
            pos[pids] = nodes
        return bool((pos == self.logical.destinations).all())

    def validate_dictwalk(self) -> None:
        """The reference per-move dict-walk validator.

        Exactly the pre-vectorization implementation: every move checked
        one dict entry at a time.  :meth:`validate` falls back to it for
        precise errors, the equivalence tests hold it against the fast
        path, and ``benchmarks/bench_plancache.py`` uses it as the timing
        baseline.
        """
        topo = self.topology
        n = self.logical.n
        if n != topo.num_nodes:
            raise ScheduleError(
                f"{n} packets do not match {topo.num_nodes} nodes"
            )
        pos = list(range(n))
        point_to_point = topo.channel_model is ChannelModel.POINT_TO_POINT
        for step_index, step in enumerate(self.steps):
            # Bounds first, so malformed ids raise ScheduleError instead of
            # IndexError (or silently aliasing via negative indexing).
            for pid, node in step.items():
                if not 0 <= pid < n:
                    raise ScheduleError(
                        f"step {step_index}: packet id {pid} outside [0, {n})"
                    )
                if not 0 <= node < topo.num_nodes:
                    raise ScheduleError(
                        f"step {step_index}: node {node} outside "
                        f"[0, {topo.num_nodes})"
                    )
            if point_to_point:
                self._validate_point_to_point_step(topo, pos, step, step_index)
            else:
                self._validate_net_step(topo, pos, step, step_index)
            for pid, node in step.items():
                pos[pid] = node
        for pid in range(n):
            want = self.logical[pid]
            if pos[pid] != want:
                raise ScheduleError(
                    f"packet {pid} ends at node {pos[pid]}, expected {want}"
                )

    @staticmethod
    def _validate_point_to_point_step(
        topo: PointToPointTopology,
        pos: Sequence[int],
        step: Mapping[int, int],
        step_index: int,
    ) -> None:
        used_links: set[tuple[int, int]] = set()
        for pid, node in step.items():
            cur = pos[pid]
            if node == cur:
                raise ScheduleError(
                    f"step {step_index}: packet {pid} 'moves' to its own node"
                )
            if node not in topo.neighbors(cur):
                raise ScheduleError(
                    f"step {step_index}: packet {pid} jumps {cur} -> {node} "
                    f"(not adjacent)"
                )
            link = (cur, node)
            if link in used_links:
                raise ScheduleError(
                    f"step {step_index}: directed link {link} carries two packets"
                )
            used_links.add(link)

    @staticmethod
    def _validate_net_step(
        topo: HypergraphTopology,
        pos: Sequence[int],
        step: Mapping[int, int],
        step_index: int,
    ) -> None:
        inject: set[tuple[int, int]] = set()  # (net, sender node)
        deliver: set[tuple[int, int]] = set()  # (net, receiver node)
        for pid, node in step.items():
            cur = pos[pid]
            if node == cur:
                raise ScheduleError(
                    f"step {step_index}: packet {pid} 'moves' to its own node"
                )
            net = _shared_net(topo, cur, node)
            if net is None:
                raise ScheduleError(
                    f"step {step_index}: packet {pid} jumps {cur} -> {node} "
                    f"(no shared net)"
                )
            if (net, cur) in inject:
                raise ScheduleError(
                    f"step {step_index}: node {cur} injects two packets into "
                    f"net {net}"
                )
            if (net, node) in deliver:
                raise ScheduleError(
                    f"step {step_index}: node {node} receives two packets from "
                    f"net {net}"
                )
            inject.add((net, cur))
            deliver.add((net, node))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CommSchedule(topology={self.topology!r}, "
            f"steps={self.num_steps}, packets={self.logical.n})"
        )


def _shared_net(topo: HypergraphTopology, a: int, b: int) -> int | None:
    """Identifier of a net containing both nodes, or None.

    For hypermeshes the nets of a node intersect pairwise only at the node,
    so at most one net is shared by two distinct nodes.  Delegates to the
    topology's cached/closed-form lookup instead of intersecting net sets
    per call, which dominated validation time on large hypermeshes.
    """
    if not isinstance(topo, HypergraphTopology):
        raise TypeError(
            f"net lookup needs a HypergraphTopology, got {type(topo).__name__}"
        )
    return topo.shared_net(a, b)


def schedule_from_phases(
    topology: Topology,
    phases: Sequence[Permutation],
) -> CommSchedule:
    """Lower a sequence of one-step phase permutations to a schedule.

    Each phase must move every non-fixed packet exactly one hop; the phases
    compose left-to-right into the logical permutation.  This is the lowering
    used by hypercube butterfly stages and hypermesh Clos routes, where the
    algorithm guarantees single-hop phases.
    """
    if not phases:
        raise ScheduleError("need at least one phase")
    n = phases[0].n
    steps: list[dict[int, int]] = []
    # Track where each packet currently is so phases (which permute
    # *positions*) can be converted into per-packet moves.
    position = list(range(n))
    packet_at = list(range(n))  # node -> packet id
    logical = Permutation.identity(n)
    for phase in phases:
        if phase.n != n:
            raise ScheduleError("phase sizes disagree")
        logical = logical.compose(phase)
        moves: dict[int, int] = {}
        new_position = position[:]
        new_packet_at = packet_at[:]
        for node in range(n):
            dest = phase[node]
            if dest != node:
                pid = packet_at[node]
                moves[pid] = dest
                new_position[pid] = dest
                new_packet_at[dest] = pid
        position = new_position
        packet_at = new_packet_at
        steps.append(moves)
    return CommSchedule(topology=topology, logical=logical, steps=tuple(steps))
