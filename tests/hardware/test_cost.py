"""Unit tests for the equal-aggregate-bandwidth normalization (Section III-D)."""

import pytest

from repro.hardware import GAAS_1992, Technology, link_bandwidth, link_pins, normalize, step_time
from repro.networks import Hypercube, Hypermesh, Hypermesh2D, Mesh2D, Torus2D


class TestLinkPins:
    def test_mesh_section4_figure(self):
        # 64 / 5 = 12.8 pins per inter-PE link.
        assert link_pins(Mesh2D(64), GAAS_1992) == pytest.approx(12.8)

    def test_hypercube_section4_figure(self):
        # 64 / 13 = 4.92 pins.
        assert link_pins(Hypercube(12), GAAS_1992) == pytest.approx(64 / 13)

    def test_hypermesh_section4_figure(self):
        # 32 ICs per net -> 32 pins per node port.
        assert link_pins(Hypermesh2D(64), GAAS_1992) == pytest.approx(32.0)

    def test_mesh_without_pe_port(self):
        assert link_pins(Mesh2D(64), GAAS_1992, include_pe_port=False) == pytest.approx(16.0)

    def test_general_hypermesh_k_over_n(self):
        # base-16 3D hypermesh of 4096 nodes: pins = K / dims.
        hm = Hypermesh(16, 3)
        assert link_pins(hm, GAAS_1992) == pytest.approx(64 / 3)

    def test_rounding_down(self):
        tech = Technology(round_pins_down=True)
        assert link_pins(Mesh2D(64), tech) == 12.0

    def test_budget_below_pe_count_rejected(self):
        with pytest.raises(ValueError):
            link_pins(Mesh2D(4), GAAS_1992, ic_budget=15)

    def test_hypermesh_budget_below_net_count_rejected(self):
        with pytest.raises(ValueError):
            link_pins(Hypermesh2D(4), GAAS_1992, ic_budget=7)

    def test_hypermesh_base_exceeding_ports_rejected(self):
        # The paper's K >= sqrt(N) constraint.
        with pytest.raises(ValueError):
            link_pins(Hypermesh2D(128), GAAS_1992)

    def test_hypercube_degree_exceeding_ports_rejected(self):
        with pytest.raises(ValueError):
            link_pins(Hypercube(10), Technology(crossbar_ports=8))

    def test_zero_budget_rejected(self):
        with pytest.raises(ValueError):
            link_pins(Mesh2D(4), GAAS_1992, ic_budget=0)


class TestLinkBandwidth:
    def test_mesh_2_56_gbit(self):
        assert link_bandwidth(Mesh2D(64), GAAS_1992) == pytest.approx(2.56e9)

    def test_hypercube_0_985_gbit(self):
        assert link_bandwidth(Hypercube(12), GAAS_1992) == pytest.approx(0.9846e9, rel=1e-3)

    def test_hypermesh_6_4_gbit(self):
        assert link_bandwidth(Hypermesh2D(64), GAAS_1992) == pytest.approx(6.4e9)

    def test_torus_same_as_mesh(self):
        assert link_bandwidth(Torus2D(64), GAAS_1992) == link_bandwidth(
            Mesh2D(64), GAAS_1992
        )

    def test_kl_over_2_formula(self):
        # Equation (1): hypermesh link bandwidth = K L / 2 for any square size.
        for side in (4, 8, 16, 32, 64):
            assert link_bandwidth(Hypermesh2D(side), GAAS_1992) == pytest.approx(
                GAAS_1992.aggregate_crossbar_bandwidth / 2
            )


class TestStepTime:
    def test_mesh_50ns(self):
        assert step_time(Mesh2D(64), GAAS_1992) == pytest.approx(50e-9)

    def test_hypercube_130ns(self):
        assert step_time(Hypercube(12), GAAS_1992) == pytest.approx(130e-9, rel=1e-2)

    def test_hypermesh_20ns(self):
        assert step_time(Hypermesh2D(64), GAAS_1992) == pytest.approx(20e-9)

    def test_propagation_delay_added(self):
        tech = GAAS_1992.with_propagation_delay(20e-9)
        assert step_time(Hypermesh2D(64), tech) == pytest.approx(40e-9)


class TestNormalize:
    def test_aggregate_bandwidth_equal_across_networks(self):
        nets = [
            normalize(Mesh2D(64), GAAS_1992),
            normalize(Hypercube(12), GAAS_1992),
            normalize(Hypermesh2D(64), GAAS_1992),
        ]
        aggregates = {n.aggregate_bandwidth for n in nets}
        assert len(aggregates) == 1  # the comparison's founding assumption

    def test_bundle_consistency(self):
        nn = normalize(Mesh2D(8), GAAS_1992)
        assert nn.link_bandwidth == pytest.approx(
            nn.pins_per_link * GAAS_1992.pin_bandwidth
        )
        assert nn.step_time == pytest.approx(
            GAAS_1992.packet_bits / nn.link_bandwidth
        )
        assert nn.ic_budget == 64
