"""Unit tests for twiddle factors."""

import numpy as np
import pytest

from repro.fft import stage_twiddles, twiddle


class TestTwiddle:
    def test_unit_root(self):
        assert twiddle(4, 1) == pytest.approx(-1j)
        assert twiddle(2, 1) == pytest.approx(-1.0)
        assert twiddle(8, 0) == pytest.approx(1.0)

    def test_periodicity(self):
        assert twiddle(8, 9) == pytest.approx(twiddle(8, 1))

    def test_vectorized(self):
        out = twiddle(4, np.array([0, 1, 2, 3]))
        assert np.allclose(out, [1, -1j, -1, 1j])

    def test_order_must_be_positive(self):
        with pytest.raises(ValueError):
            twiddle(0, 1)

    def test_magnitude_one(self):
        assert np.allclose(np.abs(twiddle(16, np.arange(16))), 1.0)


class TestStageTwiddles:
    def test_final_stage_all_ones(self):
        # bit 0: span 1, W_2^0 = 1 everywhere.
        assert np.allclose(stage_twiddles(8, 0), 1.0)

    def test_first_stage_matches_definition(self):
        n = 8
        tw = stage_twiddles(n, 2)  # span 4, order 8
        idx = np.arange(n)
        assert np.allclose(tw, np.exp(-2j * np.pi * (idx % 4) / 8))

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError):
            stage_twiddles(8, 3)

    def test_negative_bit(self):
        with pytest.raises(ValueError):
            stage_twiddles(8, -1)
