"""The synchronous word-level network simulator.

One *data-transfer step* advances the whole machine at once, exactly as the
paper's SIMD word-level model prescribes:

* every directed link of a point-to-point network forwards at most one
  packet;
* every hypermesh net realizes at most one partial permutation (each member
  node injects at most one packet into the net and accepts at most one from
  it);
* packets that lose arbitration wait in unbounded FIFO buffers at their
  current node.

:func:`route_permutation` drives one packet per node adaptively with a
per-topology :class:`~repro.sim.routers.Router` and **records** every move,
returning a :class:`~repro.sim.schedule.CommSchedule` plus congestion
statistics.  :func:`route_demands` generalizes to arbitrary multisets of
``(source, destination)`` packets — h-relations — under the very same
channel constraints, which is how the blocked FFT's m-relation bit reversal
can be *executed* rather than only planned.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from ..networks.base import ChannelModel, HypergraphTopology, Topology
from ..routing.permutation import Permutation
from .routers import Router, router_for
from .schedule import CommSchedule, ScheduleError
from .stats import RoutingStats

__all__ = [
    "RoutedPermutation",
    "RoutedDemands",
    "route_permutation",
    "route_demands",
    "replay_schedule",
]


@dataclass(frozen=True)
class RoutedPermutation:
    """Result of adaptively routing a permutation."""

    schedule: CommSchedule
    stats: RoutingStats


@dataclass(frozen=True)
class RoutedDemands:
    """Result of adaptively routing an arbitrary packet multiset.

    ``steps[s][packet_index] = node moved to during step s`` — the same
    time-expanded encoding as :class:`CommSchedule`, but packets are
    identified by their index into ``demands`` and may start anywhere.
    """

    demands: tuple[tuple[int, int], ...]
    steps: tuple[dict[int, int], ...]
    stats: RoutingStats


def _route_core(
    topology: Topology,
    sources: Sequence[int],
    dests: Sequence[int],
    router: Router,
    max_steps: int,
) -> tuple[list[dict[int, int]], RoutingStats]:
    """Shared arbitration loop for permutation and h-relation routing."""
    n = topology.num_nodes
    hypergraph = topology.channel_model is ChannelModel.HYPERGRAPH_NET

    position = list(sources)
    queues: list[deque[int]] = [deque() for _ in range(n)]
    in_flight = 0
    for pid, (src, dst) in enumerate(zip(sources, dests)):
        if src != dst:
            queues[src].append(pid)
            in_flight += 1

    stats = RoutingStats()
    stats.delivered = len(sources) - in_flight
    stats.max_queue_depth = max((len(q) for q in queues), default=0)
    steps: list[dict[int, int]] = []

    while in_flight:
        if stats.steps >= max_steps:
            raise ScheduleError(
                f"{in_flight} packets undelivered after {max_steps} steps"
            )
        moves: dict[int, int] = {}
        used_links: set[tuple[int, int]] = set()
        used_inject: set[tuple[int, int]] = set()
        used_deliver: set[tuple[int, int]] = set()

        # Propose in deterministic order: node index, then FIFO position.
        for node in range(n):
            for pid in queues[node]:
                nxt = router.next_hop(node, dests[pid])
                if nxt is None:
                    continue  # already home (shouldn't be queued, but safe)
                if hypergraph:
                    net = _shared_net_id(topology, node, nxt)
                    if net is None:
                        raise ScheduleError(
                            f"router proposed non-net hop {node} -> {nxt}"
                        )
                    if (net, node) in used_inject or (net, nxt) in used_deliver:
                        stats.blocked_moves += 1
                        continue
                    used_inject.add((net, node))
                    used_deliver.add((net, nxt))
                else:
                    link = (node, nxt)
                    if link in used_links:
                        stats.blocked_moves += 1
                        continue
                    used_links.add(link)
                moves[pid] = nxt

        if not moves:
            raise ScheduleError(
                f"deadlock: {in_flight} packets queued but none can move"
            )

        # Apply the granted moves.
        for pid, nxt in moves.items():
            queues[position[pid]].remove(pid)
            position[pid] = nxt
            if nxt == dests[pid]:
                stats.delivered += 1
                in_flight -= 1
            else:
                queues[nxt].append(pid)
        steps.append(moves)
        stats.steps += 1
        stats.total_hops += len(moves)
        stats.per_step_moves.append(len(moves))
        depth = max((len(q) for q in queues), default=0)
        stats.max_queue_depth = max(stats.max_queue_depth, depth)

    return steps, stats


def route_permutation(
    topology: Topology,
    perm: Permutation,
    router: Router | None = None,
    *,
    max_steps: int | None = None,
) -> RoutedPermutation:
    """Route one packet per node to ``perm[node]`` and record the schedule.

    Parameters
    ----------
    topology:
        Network to route on.
    perm:
        Destination of the packet starting at each node.
    router:
        Routing discipline; defaults to the topology's canonical router.
    max_steps:
        Safety bound; defaults to ``10 * diameter + 10 * N`` which no
        deterministic minimal-path discipline on these topologies exceeds.

    Raises
    ------
    ScheduleError
        If packets are undeliverable within ``max_steps`` (e.g. a router
        proposing non-neighbours, which validation would also catch).
    """
    n = topology.num_nodes
    if perm.n != n:
        raise ValueError(f"permutation on {perm.n} points, topology has {n} nodes")
    router = router or router_for(topology)
    if max_steps is None:
        max_steps = 10 * topology.diameter + 10 * n

    steps, stats = _route_core(
        topology, list(range(n)), perm.destinations.tolist(), router, max_steps
    )
    schedule = CommSchedule(
        topology=topology, logical=perm, steps=tuple(steps)
    )
    return RoutedPermutation(schedule=schedule, stats=stats)


def route_demands(
    topology: Topology,
    demands: Sequence[tuple[int, int]],
    router: Router | None = None,
    *,
    max_steps: int | None = None,
) -> RoutedDemands:
    """Route an arbitrary packet multiset (an h-relation) adaptively.

    Each ``demands[k] = (source, destination)`` packet starts at its source;
    several packets may share a source or a destination — the channel
    constraints (one packet per directed link per step; one injection and
    one delivery per net port per step) still apply, so congestion shows up
    as steps, exactly as the word model prescribes.

    The ``max_steps`` default scales with the relation's degree ``h``.
    """
    n = topology.num_nodes
    for src, dst in demands:
        topology.validate_node(src)
        topology.validate_node(dst)
    router = router or router_for(topology)
    if max_steps is None:
        out = [0] * n
        inc = [0] * n
        for src, dst in demands:
            if src != dst:
                out[src] += 1
                inc[dst] += 1
        h = max(max(out, default=0), max(inc, default=0), 1)
        max_steps = h * (10 * topology.diameter + 10 * n)

    sources = [src for src, _ in demands]
    dests = [dst for _, dst in demands]
    steps, stats = _route_core(topology, sources, dests, router, max_steps)
    return RoutedDemands(
        demands=tuple((int(s), int(d)) for s, d in demands),
        steps=tuple(steps),
        stats=stats,
    )


def replay_schedule(schedule: CommSchedule) -> int:
    """Validate a schedule against the hardware model and return its step
    count.  Thin convenience wrapper so benchmark code reads naturally."""
    schedule.validate()
    return schedule.num_steps


def _shared_net_id(topology: Topology, a: int, b: int) -> int | None:
    assert isinstance(topology, HypergraphTopology)
    nets_a = set(topology.nets_of(a))
    for net in topology.nets_of(b):
        if net in nets_a:
            return net
    return None
