"""Built-in campaign definitions.

These are the sweeps the repo itself runs (``repro campaign run <name>``):
the paper's evaluations are organized as grids over (machine size x topology
x workload), and these specs encode them declaratively.
"""

from __future__ import annotations

from .spec import CampaignSpec, TaskSpec

__all__ = ["BUILTIN_CAMPAIGNS", "builtin_campaign", "list_builtin_campaigns"]

#: Even powers of two only: every topology in the grid needs a square side
#: (mesh/hypermesh) and a power-of-two node count (hypercube).
ENGINE_SWEEP_SIZES = (64, 256, 1024, 4096)
ENGINE_SWEEP_TOPOLOGIES = ("mesh2d", "hypercube", "hypermesh2d")
ENGINE_SWEEP_WORKLOADS = ("dense-permutation", "bit-reversal", "sparse-hrelation")


def _engine_sweep() -> CampaignSpec:
    """3 topologies x 4 sizes x 3 workloads x 2 backends = 72 routing tasks
    (the PR 1 engine sweep, recast as a campaign grid).

    The ``backend`` axis runs every cell on both the indexed and the
    structure-of-arrays cores; the two halves of the grid must report
    identical step counts (the backends are bit-identical by contract), so
    the sweep doubles as a coarse cross-backend consistency check at
    campaign scale.  ``numba`` is deliberately absent: built-in campaigns
    must run everywhere, optional dependencies included nowhere.
    """
    return CampaignSpec.from_grid(
        "engine-sweep",
        "repro.sim.task:run_routing_task",
        {
            "topology": list(ENGINE_SWEEP_TOPOLOGIES),
            "n": list(ENGINE_SWEEP_SIZES),
            "workload": list(ENGINE_SWEEP_WORKLOADS),
            "backend": ["indexed", "numpy"],
        },
        base={"seed": 99, "arbitration": "overtaking"},
        meta={
            "description": "word-level routing engine sweep "
            "(topology x N x workload x backend), fixed seeds",
        },
    )


def _engine_sweep_small() -> CampaignSpec:
    """A 2-minute-class subset for CI smoke and local sanity checks."""
    return CampaignSpec.from_grid(
        "engine-sweep-small",
        "repro.sim.task:run_routing_task",
        {
            "topology": ["mesh2d", "hypermesh2d"],
            "n": [64, 256],
            "workload": ["dense-permutation", "sparse-hrelation"],
        },
        base={"seed": 99, "arbitration": "overtaking"},
        meta={"description": "small engine sweep for smoke tests"},
    )


def _engine_sweep_cached() -> CampaignSpec:
    """The engine sweep with the routing plan cache's on-disk tier enabled.

    Identical grid to ``engine-sweep``, but every task passes
    ``plan_cache="disk"`` so workers record each routed schedule under
    ``results/plans/`` and replay it on reruns (see
    :mod:`repro.sim.plancache`).  The cache key covers topology, demands,
    router, arbitration, and engine schema, so replays are bit-identical to
    live routing; ``plan_cache`` is part of each task's content hash, so
    cached and uncached sweeps never collide in the campaign store.
    """
    return CampaignSpec.from_grid(
        "engine-sweep-cached",
        "repro.sim.task:run_routing_task",
        {
            "topology": list(ENGINE_SWEEP_TOPOLOGIES),
            "n": list(ENGINE_SWEEP_SIZES),
            "workload": list(ENGINE_SWEEP_WORKLOADS),
        },
        base={"seed": 99, "arbitration": "overtaking", "plan_cache": "disk"},
        meta={
            "description": "engine sweep with the on-disk routing plan "
            "cache (warm reruns replay recorded schedules)",
        },
    )


#: Grid axes for the communication-avoiding sweep.  Square powers of two
#: fit every topology family (and the APE FFT's square PE layout).
COMM_AVOIDING_TOPOLOGIES = ("mesh2d", "torus2d", "hypercube", "hypermesh2d")
COMM_AVOIDING_SIZES = (64, 256, 1024)


def _comm_avoiding() -> CampaignSpec:
    """4 topologies x 3 sizes x (2 convolution methods + APE FFT) = 36
    certified staged-workload cells.

    Each convolution cell runs Galli's hyper-systolic scheme (or its
    systolic baseline) on the SIMD machine with a ``sqrt(N)``-tap kernel —
    the regime where the hyper-systolic base ``B = K^(1/2)`` pays off —
    and each FFT cell runs the APE-style four-step transform.  Every
    payload verifies its values against the direct numpy evaluation and
    certifies the achieved step count against the :mod:`repro.bounds`
    superstep-sum floor: a two-sided claim per cell.
    """
    tasks = []
    for topology in COMM_AVOIDING_TOPOLOGIES:
        for n in COMM_AVOIDING_SIZES:
            for method in ("systolic", "hyper-systolic"):
                tasks.append(
                    TaskSpec(
                        entry="repro.algos.hypersystolic:run_commavoiding_task",
                        params={
                            "topology": topology,
                            "n": n,
                            "method": method,
                            "seed": 99,
                        },
                        label=f"{method}-{topology}-n{n}",
                    )
                )
            tasks.append(
                TaskSpec(
                    entry="repro.fft.ape:run_ape_fft_task",
                    params={"topology": topology, "n": n, "seed": 99},
                    label=f"ape-fft-{topology}-n{n}",
                )
            )
    return CampaignSpec(
        "comm-avoiding",
        tuple(tasks),
        meta={
            "description": "communication-avoiding workloads: systolic vs "
            "hyper-systolic convolution and the APE four-step FFT, "
            "verified and bound-certified",
        },
    )


#: Link-failure fractions for the chaos sweep: intact baseline up to the
#: regime where partitions start appearing on small meshes.
CHAOS_SWEEP_FRACTIONS = (0.0, 0.05, 0.1, 0.2)


#: Degraded-capable backends for the chaos sweep's backend axis.  Like the
#: engine sweep, ``numba`` is deliberately absent: built-in campaigns must
#: run everywhere, optional dependencies included nowhere (``cupy`` is in
#: any case fault-free only).
CHAOS_SWEEP_BACKENDS = ("indexed", "numpy")


def _chaos_sweep() -> CampaignSpec:
    """Degraded-mode grid: 3 topologies x 2 sizes x 4 link-fail fractions
    x 2 degraded backends (plus the hypermesh degraded-net column).

    Each cell routes the fixed dense permutation through a machine with a
    seeded fraction of its links failed (``fault.seed`` fixed at 99, so the
    sampled link sets are reproducible).  ``allow_unroutable`` turns a
    partitioned cell into an ``unroutable: 1`` row rather than a failed
    task — the interesting output of this sweep *is* where routing stops
    being possible.  The hypermesh column uses degraded nets instead of
    link fractions (hypergraph networks have nets, not links): net 0
    serialized, then nets 0+1.  The ``backend`` axis runs every faulted
    cell on both the indexed and the structure-of-arrays degraded cores;
    the two halves of the grid must report identical step counts (the
    degraded backends are bit-identical by contract), so the sweep doubles
    as a cross-backend consistency check at campaign scale.
    """
    tasks = []
    for backend in CHAOS_SWEEP_BACKENDS:
        for topology in ("mesh2d", "torus2d", "hypercube"):
            for n in (64, 256):
                for frac in CHAOS_SWEEP_FRACTIONS:
                    fault = (
                        {"seed": 99, "link_fail_fraction": frac}
                        if frac else {}
                    )
                    tasks.append(
                        TaskSpec(
                            entry="repro.sim.task:run_routing_task",
                            params={
                                "topology": topology,
                                "n": n,
                                "workload": "dense-permutation",
                                "seed": 99,
                                "arbitration": "overtaking",
                                "backend": backend,
                                "allow_unroutable": True,
                                **({"fault": fault} if fault else {}),
                            },
                            label=f"{topology}-n{n}-frac{frac}-{backend}",
                        )
                    )
        for n in (64, 256):
            for degraded in ((), (0,), (0, 1)):
                fault = {"seed": 99, "degraded_nets": list(degraded)}
                tasks.append(
                    TaskSpec(
                        entry="repro.sim.task:run_routing_task",
                        params={
                            "topology": "hypermesh2d",
                            "n": n,
                            "workload": "dense-permutation",
                            "seed": 99,
                            "arbitration": "overtaking",
                            "backend": backend,
                            "allow_unroutable": True,
                            **({"fault": fault} if degraded else {}),
                        },
                        label=(
                            f"hypermesh2d-n{n}-degraded{len(degraded)}"
                            f"-{backend}"
                        ),
                    )
                )
    return CampaignSpec(
        "chaos-sweep",
        tuple(tasks),
        meta={
            "description": "degraded-mode sweep: routing time vs fraction "
            "of failed links (and degraded hypermesh nets), seeded faults, "
            "indexed + numpy degraded backends",
        },
    )


def _experiments() -> CampaignSpec:
    from ..experiments import EXPERIMENTS

    return CampaignSpec(
        "experiments",
        tuple(
            TaskSpec(
                entry="repro.experiments:run_experiment_task",
                params={"experiment_id": eid},
                label=eid,
            )
            for eid in EXPERIMENTS
        ),
        meta={"description": "every registered EXPERIMENTS.md entry"},
    )


def _paper() -> CampaignSpec:
    """Every task behind ``repro paper`` at the paper-scale grid.

    Defined by the section registry (:mod:`repro.paper.sections`), so the
    campaign and the ``repro paper`` verb can never disagree about what
    the paper's artifacts are.
    """
    from ..paper.sections import paper_campaign

    return paper_campaign("full")


def _paper_smoke() -> CampaignSpec:
    """The ``repro paper --profile smoke`` grid (CI-fast small N)."""
    from ..paper.sections import paper_campaign

    return paper_campaign("smoke")


BUILTIN_CAMPAIGNS = {
    "engine-sweep": _engine_sweep,
    "engine-sweep-small": _engine_sweep_small,
    "engine-sweep-cached": _engine_sweep_cached,
    "comm-avoiding": _comm_avoiding,
    "chaos-sweep": _chaos_sweep,
    "experiments": _experiments,
    "paper": _paper,
    "paper-smoke": _paper_smoke,
}


def list_builtin_campaigns() -> list[tuple[str, str]]:
    """(name, description) pairs for the CLI listing."""
    out = []
    for name, factory in BUILTIN_CAMPAIGNS.items():
        spec = factory()
        out.append((name, f"{spec.meta.get('description', '')} ({len(spec)} tasks)"))
    return out


def builtin_campaign(name: str) -> CampaignSpec:
    """Resolve a built-in campaign by name.

    Raises ``KeyError`` with the available names for unknown campaigns.
    """
    try:
        factory = BUILTIN_CAMPAIGNS[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; built-ins: {sorted(BUILTIN_CAMPAIGNS)}"
        ) from None
    return factory()
