"""Unit tests for the transmission-line link model."""

import pytest

from repro.hardware import Link


class TestTransmission:
    def test_mesh_packet_time(self):
        # 128 bits over 2.56 Gbit/s = 50 ns (Section IV).
        link = Link(bandwidth=2.56e9)
        assert link.transmission_time(128) == pytest.approx(50e-9)

    def test_hypermesh_packet_time(self):
        # 128 bits over 6.4 Gbit/s = 20 ns.
        assert Link(bandwidth=6.4e9).packet_time(128) == pytest.approx(20e-9)

    def test_propagation_added(self):
        link = Link(bandwidth=6.4e9, propagation_delay=20e-9)
        assert link.packet_time(128) == pytest.approx(40e-9)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            Link(bandwidth=0)

    def test_rejects_negative_propagation(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1e9, propagation_delay=-1)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            Link(bandwidth=1e9).transmission_time(0)


class TestPropagationHelper:
    def test_twenty_feet_is_twenty_ns(self):
        assert Link.propagation_for_length(20) == pytest.approx(20e-9)

    def test_zero_length(self):
        assert Link.propagation_for_length(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Link.propagation_for_length(-1)
