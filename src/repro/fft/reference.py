"""Sequential radix-2 Cooley–Tukey FFT, written to mirror the flow graph.

This is the *reference semantics* for the parallel machines: an iterative
decimation-in-frequency FFT whose stage structure matches Fig. 3 exactly —
``log N`` butterfly ranks followed by the bit-reversal permutation.  It is
deliberately implemented from scratch (not a ``numpy.fft`` call) so the
repository owns the algorithm end to end; tests then pin *both* this
implementation and the parallel executions against ``numpy.fft.fft``.
"""

from __future__ import annotations

import numpy as np

from ..networks.addressing import bit_reversal_permutation, ilog2
from .twiddle import stage_twiddles

__all__ = ["fft_dif", "ifft_dif", "dft_direct"]


def fft_dif(x: np.ndarray) -> np.ndarray:
    """N-point DFT by iterative radix-2 decimation in frequency.

    Natural-order input, natural-order output (the internal bit-reversed
    result is reordered by the closing permutation, exactly like the mapped
    parallel algorithm).  ``N`` must be a power of two.
    """
    x = np.asarray(x, dtype=np.complex128)
    if x.ndim != 1:
        raise ValueError("expected a 1D sample vector")
    n = x.size
    width = ilog2(n)
    values = x.copy()
    idx = np.arange(n)
    for bit in reversed(range(width)):
        m = 1 << bit
        partner = values[idx ^ m]
        upper = (idx & m) == 0
        tw = stage_twiddles(n, bit)
        values = np.where(upper, values + partner, (partner - values) * tw)
    # values[i] now holds X[bit_reverse(i)]; undo with the involution.
    return values[bit_reversal_permutation(n)]


def ifft_dif(x: np.ndarray) -> np.ndarray:
    """Inverse DFT via conjugation: ``ifft(x) = conj(fft(conj(x))) / N``."""
    x = np.asarray(x, dtype=np.complex128)
    return np.conj(fft_dif(np.conj(x))) / x.size


def dft_direct(x: np.ndarray) -> np.ndarray:
    """O(N^2) direct DFT — the ground truth for small-size tests."""
    x = np.asarray(x, dtype=np.complex128)
    n = x.size
    k = np.arange(n)
    matrix = np.exp(-2j * np.pi * np.outer(k, k) / n)
    return matrix @ x
