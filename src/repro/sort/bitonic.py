"""Batcher's bitonic sort on the three networks (Section IV-A cross-check).

The paper quotes its companion analysis [13]: for the bitonic sort on 4K
keys / 4K PEs the hypermesh came out 12.3x faster than the 2D mesh and 6.47x
faster than the hypercube.  Bitonic sort is the canonical ASCEND/DESCEND
algorithm: ``log N (log N + 1) / 2`` compare-exchange passes, each a
butterfly exchange on one address bit — so it reuses the FFT's exchange
lowerings unchanged and exercises exactly the permutations Section V argues
stress the bisection.

Pass structure (0-indexed): merge level ``i = 0 .. log N - 1`` runs passes on
bits ``i, i-1, ..., 0``; the sort direction of a pair flips with address bit
``i + 1`` (the standard construction producing an ascending full sort).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.lowering import butterfly_exchange_schedule
from ..networks.addressing import ilog2
from ..networks.base import Topology
from ..sim.machine import Compute, Exchange, ProgramOp, SimdMachine
from ..sim.schedule import CommSchedule

__all__ = [
    "BitonicMapping",
    "BitonicSortResult",
    "map_bitonic_sort",
    "build_bitonic_program",
    "parallel_bitonic_sort",
    "bitonic_pass_bits",
]


def bitonic_pass_bits(num_keys: int) -> list[tuple[int, int]]:
    """The ``(merge_level, bit)`` sequence of all compare-exchange passes."""
    width = ilog2(num_keys)
    return [(i, j) for i in range(width) for j in range(i, -1, -1)]


@dataclass(frozen=True)
class BitonicMapping:
    """Lowered communication plan of a bitonic sort on one topology."""

    topology: Topology
    pass_schedules: tuple[CommSchedule, ...]
    pass_bits: tuple[tuple[int, int], ...]

    @property
    def num_passes(self) -> int:
        """Compare-exchange passes = ``log N (log N + 1) / 2``."""
        return len(self.pass_schedules)

    @property
    def total_steps(self) -> int:
        """Data-transfer steps across all passes."""
        return sum(s.num_steps for s in self.pass_schedules)

    def validate(self) -> None:
        """Replay every pass schedule against the hardware model."""
        for schedule in self.pass_schedules:
            schedule.validate()


@dataclass(frozen=True)
class BitonicSortResult:
    """Outcome of a parallel bitonic sort run."""

    keys: np.ndarray
    data_transfer_steps: int
    computation_steps: int
    mapping: BitonicMapping


def map_bitonic_sort(topology: Topology) -> BitonicMapping:
    """Lower the bitonic sorting network onto ``topology``.

    Schedules are shared between passes touching the same bit (the exchange
    pattern is identical; only the compare direction differs).
    """
    n = topology.num_nodes
    bits = bitonic_pass_bits(n)
    cache: dict[int, CommSchedule] = {}
    schedules = []
    for _, bit in bits:
        if bit not in cache:
            cache[bit] = butterfly_exchange_schedule(topology, bit)
        schedules.append(cache[bit])
    return BitonicMapping(
        topology=topology,
        pass_schedules=tuple(schedules),
        pass_bits=tuple(bits),
    )


def _compare_exchange(level: int, bit: int):
    """Vectorized compare-exchange for merge ``level`` on ``bit``.

    A PE keeps the minimum of (own, received) when its position within the
    pair (bit ``bit``) matches the pair's sort direction (bit ``level+1`` of
    the address: 0 = ascending).
    """
    direction_mask = 1 << (level + 1)
    pair_mask = 1 << bit

    def fn(values: np.ndarray, received: np.ndarray, idx: np.ndarray) -> np.ndarray:
        ascending = (idx & direction_mask) == 0
        is_lower = (idx & pair_mask) == 0
        keep_min = ascending == is_lower
        return np.where(
            keep_min, np.minimum(values, received), np.maximum(values, received)
        )

    return fn


def build_bitonic_program(mapping: BitonicMapping) -> list[ProgramOp]:
    """Lower a :class:`BitonicMapping` to a SIMD machine program."""
    program: list[ProgramOp] = []
    for (level, bit), schedule in zip(mapping.pass_bits, mapping.pass_schedules):
        program.append(Exchange(schedule=schedule, label=f"exchange bit {bit}"))
        program.append(
            Compute(fn=_compare_exchange(level, bit), label=f"compare L{level} b{bit}")
        )
    return program


def parallel_bitonic_sort(
    topology: Topology,
    keys: np.ndarray,
    *,
    validate: bool = False,
    mapping: BitonicMapping | None = None,
) -> BitonicSortResult:
    """Sort ``keys`` ascending on the simulated parallel machine.

    One key per PE; ``len(keys)`` must equal the (power-of-two) PE count.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise ValueError("expected a 1D key vector")
    if keys.size != topology.num_nodes:
        raise ValueError(
            f"{keys.size} keys need {keys.size} PEs, topology has "
            f"{topology.num_nodes}"
        )
    if mapping is None:
        mapping = map_bitonic_sort(topology)
    program = build_bitonic_program(mapping)
    machine = SimdMachine(topology, validate=validate)
    result = machine.run(program, keys)
    return BitonicSortResult(
        keys=result.values,
        data_transfer_steps=result.data_transfer_steps,
        computation_steps=result.computation_steps,
        mapping=mapping,
    )
