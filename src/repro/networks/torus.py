"""k-ary n-cubes: meshes with wrap-around links (tori).

The paper mentions wrap-around links twice: the mesh bit-reversal lower bound
drops from ``2(sqrt(N)-1)`` to ``sqrt(N)/2`` when they exist, and equation (2)
charges the optimistic wrap-around figure.  The torus family is also the
"k-ary n-cube" of Dally's analysis discussed in the introduction, so it earns
a first-class implementation: :class:`Torus` for the general case and
:class:`Torus2D` for the square 2D instance the FFT benchmarks use.

A binary hypercube is the degenerate ``2``-ary ``n``-cube; the dedicated
:class:`~repro.networks.hypercube.Hypercube` class exists because bit-level
addressing makes the FFT schedules clearer, but the two agree structurally
(tested in ``tests/networks``).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from .addressing import from_mixed_radix, to_mixed_radix
from .base import PointToPointTopology

__all__ = ["Torus", "Torus2D"]


class Torus(PointToPointTopology):
    """An n-dimensional torus (k-ary n-cube) with extents ``radices``.

    Adjacency is the mesh adjacency plus wrap-around links joining coordinate
    ``0`` to coordinate ``extent - 1`` in every dimension.  For extent 2 the
    wrap-around link would duplicate the mesh link, so it is omitted — this
    keeps the 2-ary n-cube isomorphic to the binary hypercube instead of a
    multigraph.
    """

    name = "torus"

    def __init__(self, radices: Sequence[int]):
        radices = tuple(int(r) for r in radices)
        if not radices:
            raise ValueError("a torus needs at least one dimension")
        if any(r < 2 for r in radices):
            raise ValueError("every torus dimension needs extent >= 2")
        num_nodes = 1
        for r in radices:
            num_nodes *= r
        super().__init__(num_nodes)
        self._radices = radices

    # ----------------------------------------------------------- structure
    @property
    def radices(self) -> tuple[int, ...]:
        """Per-dimension extents (MSD first)."""
        return self._radices

    @property
    def dimensions(self) -> int:
        """Number of torus dimensions."""
        return len(self._radices)

    def coordinates(self, node: int) -> tuple[int, ...]:
        """Coordinates of ``node`` (row-major, digit 0 slowest)."""
        self.validate_node(node)
        return to_mixed_radix(node, self._radices)

    def node_at(self, coords: Sequence[int]) -> int:
        """Node identifier at ``coords``."""
        return from_mixed_radix(coords, self._radices)

    def neighbors(self, node: int) -> tuple[int, ...]:
        coords = list(self.coordinates(node))
        result = []
        for dim, extent in enumerate(self._radices):
            deltas = (-1, +1) if extent > 2 else (+1,)
            for delta in deltas:
                c = (coords[dim] + delta) % extent
                coords[dim], saved = c, coords[dim]
                result.append(from_mixed_radix(coords, self._radices))
                coords[dim] = saved
        return tuple(result)

    def links(self) -> Iterator[tuple[int, int]]:
        for node in self.nodes():
            for nb in self.neighbors(node):
                if node < nb:
                    yield (node, nb)

    def distance(self, node_a: int, node_b: int) -> int:
        """Sum over dimensions of the shorter way around the ring."""
        ca = self.coordinates(node_a)
        cb = self.coordinates(node_b)
        total = 0
        for x, y, extent in zip(ca, cb, self._radices):
            d = abs(x - y)
            total += min(d, extent - d)
        return total

    @property
    def diameter(self) -> int:
        """``sum(extent // 2)`` — half-way around every ring."""
        return sum(r // 2 for r in self._radices)

    # ------------------------------------------------------------ hardware
    @property
    def node_degree(self) -> int:
        """Ports per routing node including the PE port.

        Every node is interior on a torus: two ports per dimension with
        extent >= 3, one for extent-2 dimensions, plus the PE port.
        """
        network_ports = sum(2 if r >= 3 else 1 for r in self._radices)
        return network_ports + 1

    @property
    def num_crossbars(self) -> int:
        """One routing crossbar per PE."""
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus(radices={self._radices})"


class Torus2D(Torus):
    """Square 2D torus of ``side * side`` PEs (2D mesh with wrap-around)."""

    name = "torus2d"

    def __init__(self, side: int):
        super().__init__((side, side))
        self._side = int(side)

    @property
    def side(self) -> int:
        """Torus side length ``sqrt(N)``."""
        return self._side

    def row_col(self, node: int) -> tuple[int, int]:
        """(row, column) of ``node``."""
        return self.coordinates(node)  # type: ignore[return-value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Torus2D(side={self._side})"
