"""Unit tests for the wormhole-vs-store-and-forward model."""

import pytest

from repro.hardware import GAAS_1992, link_bandwidth
from repro.models import dense_exchange_time, lone_packet_time, mesh_fft_butterfly_time
from repro.networks import Mesh2D


MESH_BW = link_bandwidth(Mesh2D(64), GAAS_1992)  # 2.56 Gbit/s


class TestLonePacket:
    def test_wormhole_wins_at_distance(self):
        cmp_ = lone_packet_time(32, MESH_BW, GAAS_1992)
        assert cmp_.wormhole < cmp_.store_and_forward
        assert cmp_.wormhole_speedup > 5

    def test_distance_one_nearly_equal(self):
        cmp_ = lone_packet_time(1, MESH_BW, GAAS_1992)
        assert cmp_.wormhole == pytest.approx(cmp_.store_and_forward, rel=0.1)

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            lone_packet_time(0, MESH_BW, GAAS_1992)


class TestDenseExchange:
    @pytest.mark.parametrize("distance", [1, 2, 8, 32])
    def test_wormhole_never_helps(self, distance):
        """The paper's Section III-E claim, quantified."""
        cmp_ = dense_exchange_time(distance, MESH_BW, GAAS_1992)
        assert cmp_.wormhole >= cmp_.store_and_forward
        assert cmp_.wormhole_speedup <= 1.0

    def test_serialization_floor(self):
        cmp_ = dense_exchange_time(16, MESH_BW, GAAS_1992)
        serialization = GAAS_1992.packet_bits / MESH_BW
        assert cmp_.store_and_forward == pytest.approx(16 * serialization)

    def test_rejects_zero_distance(self):
        with pytest.raises(ValueError):
            dense_exchange_time(0, MESH_BW, GAAS_1992)


class TestMeshButterflyTotal:
    def test_store_and_forward_matches_paper_steps(self):
        # 2 (sqrt N - 1) steps x 50 ns at 4K PEs.
        t = mesh_fft_butterfly_time(4096, MESH_BW, GAAS_1992)
        assert t == pytest.approx(2 * 63 * 50e-9)

    def test_wormhole_is_no_faster(self):
        sf = mesh_fft_butterfly_time(4096, MESH_BW, GAAS_1992)
        wh = mesh_fft_butterfly_time(4096, MESH_BW, GAAS_1992, wormhole=True)
        assert wh >= sf

    def test_odd_log_n_rejected(self):
        with pytest.raises(ValueError):
            mesh_fft_butterfly_time(32, MESH_BW, GAAS_1992)
