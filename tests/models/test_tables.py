"""Unit tests for the table regeneration."""

import pytest

from repro.hardware import GAAS_1992
from repro.models import table_1a, table_1b, table_2a, table_2b


class TestTable1A:
    def test_row_networks(self):
        rows = table_1a(4096)
        assert [r["network"] for r in rows][:3] == [
            "2D mesh",
            "2D hypermesh",
            "hypercube",
        ]

    def test_crossbar_counts(self):
        rows = {r["network"]: r for r in table_1a(4096)}
        assert rows["2D mesh"]["crossbars"] == 4096
        assert rows["2D hypermesh"]["crossbars"] == 128
        assert rows["hypercube"]["crossbars"] == 4096

    def test_diameters(self):
        rows = {r["network"]: r for r in table_1a(4096)}
        assert rows["2D mesh"]["diameter"] == 126
        assert rows["2D hypermesh"]["diameter"] == 2
        assert rows["hypercube"]["diameter"] == 12

    def test_degree_log_row_present(self):
        rows = table_1a(4096)
        assert len(rows) == 4
        dl = rows[3]
        assert dl["degree"] >= 12  # net size >= log N

    def test_square_guard(self):
        with pytest.raises(ValueError):
            table_1a(32)


class TestTable1B:
    def test_link_bandwidths(self):
        rows = {r["network"]: r for r in table_1b(4096)}
        assert rows["2D mesh"]["link_bw"] == pytest.approx(2.56e9)
        assert rows["2D hypermesh"]["link_bw"] == pytest.approx(6.4e9)
        assert rows["hypercube"]["link_bw"] == pytest.approx(0.985e9, rel=1e-3)

    def test_paper_printed_variants(self):
        kl = GAAS_1992.aggregate_crossbar_bandwidth
        rows = {r["network"]: r for r in table_1b(4096)}
        assert rows["2D mesh"]["link_bw_paper"] == pytest.approx(kl / 4)
        assert rows["hypercube"]["link_bw_paper"] == pytest.approx(kl / 12)

    def test_d_over_bw_strings(self):
        rows = {r["network"]: r for r in table_1b(4096)}
        assert "sqrt" in rows["2D mesh"]["d_over_bw"]
        assert "log^2" in rows["hypercube"]["d_over_bw"]


class TestTable2A:
    def test_totals(self):
        rows = {r["network"]: r for r in table_2a(4096)}
        assert rows["2D mesh"]["total_steps"] == pytest.approx(158)
        assert rows["hypercube"]["total_steps"] == 24
        assert rows["2D hypermesh"]["total_steps"] == 15

    def test_bitrev_bounds(self):
        rows = {r["network"]: r for r in table_2a(4096)}
        assert rows["hypercube"]["bitrev_bound"] == ">="
        assert rows["2D hypermesh"]["bitrev_bound"] == "<="


class TestTable2B:
    def test_comm_times(self):
        rows = {r["network"]: r for r in table_2b(4096)}
        assert rows["2D mesh"]["comm_time"] == pytest.approx(8e-6)
        assert rows["hypercube"]["comm_time"] == pytest.approx(3.12e-6, rel=1e-2)
        assert rows["2D hypermesh"]["comm_time"] == pytest.approx(0.3e-6)

    def test_asymptotic_strings(self):
        rows = {r["network"]: r for r in table_2b(4096)}
        assert rows["2D hypermesh"]["time_formula"] == "O(log N/KL)"
