"""Topology abstraction shared by every interconnection network.

The paper compares three architecturally different networks:

* **point-to-point** graphs (2D mesh, torus, binary hypercube, k-ary
  n-cube), where a *link* joins exactly two routing nodes and can carry one
  packet per direction per data-transfer step; and
* **hypergraph** networks (the hypermesh), where a *net* joins all nodes
  aligned along one dimension and can realize one arbitrary permutation
  among its members per data-transfer step.

:class:`Topology` exposes the common structural interface (nodes, adjacency,
distance, diameter, crossbar inventory), and declares which channel model the
word-level simulator must enforce.  Concrete topologies provide closed-form
answers; :mod:`repro.networks.properties` re-derives the same quantities by
brute force so the formulas used in the paper's Table 1A are never taken on
faith.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterator, Sequence

__all__ = ["ChannelModel", "Topology", "PointToPointTopology", "HypergraphTopology"]


class ChannelModel(enum.Enum):
    """How a network's channels are shared during one data-transfer step."""

    #: Each (directed) link carries at most one packet per step.
    POINT_TO_POINT = "point-to-point"
    #: Each hypergraph net realizes at most one partial permutation per step:
    #: every member injects at most one packet and receives at most one.
    HYPERGRAPH_NET = "hypergraph-net"


class Topology(ABC):
    """An interconnection network on ``num_nodes`` processing elements.

    Nodes are integers ``0 .. num_nodes-1``; how an integer maps onto
    coordinates is topology-specific (see :mod:`repro.networks.addressing`).
    """

    #: Short machine-readable identifier ("mesh2d", "hypercube", ...).
    name: str = "topology"

    def __init__(self, num_nodes: int):
        if num_nodes <= 0:
            raise ValueError("a topology needs at least one node")
        self._num_nodes = int(num_nodes)

    # ------------------------------------------------------------------ core
    @property
    def num_nodes(self) -> int:
        """Number of processing elements ``N``."""
        return self._num_nodes

    @property
    @abstractmethod
    def channel_model(self) -> ChannelModel:
        """Channel sharing discipline the simulator must enforce."""

    @abstractmethod
    def neighbors(self, node: int) -> tuple[int, ...]:
        """All nodes reachable from ``node`` in one data-transfer step."""

    @abstractmethod
    def distance(self, node_a: int, node_b: int) -> int:
        """Graph distance in data-transfer steps (closed form)."""

    @property
    @abstractmethod
    def diameter(self) -> int:
        """Maximum :meth:`distance` over all node pairs (closed form)."""

    # ----------------------------------------------------------- hardware
    @property
    @abstractmethod
    def node_degree(self) -> int:
        """Ports per routing node, *including* the port to the local PE.

        This is the paper's "degree": a 2D mesh node has degree 5 (four
        neighbours plus the PE), a hypercube node ``log N + 1``.
        """

    @property
    @abstractmethod
    def num_crossbars(self) -> int:
        """Crossbar switch ICs required to build the network.

        Point-to-point networks place one crossbar per PE; the hypermesh
        spends its IC budget on the nets instead (Section III-D).
        """

    # ----------------------------------------------------------- utilities
    def nodes(self) -> range:
        """Iterate over all node identifiers."""
        return range(self._num_nodes)

    def validate_node(self, node: int) -> int:
        """Raise ``ValueError`` unless ``node`` is a valid identifier."""
        if not 0 <= node < self._num_nodes:
            raise ValueError(f"node {node} out of range [0, {self._num_nodes})")
        return node

    def __len__(self) -> int:
        return self._num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(num_nodes={self._num_nodes})"


class PointToPointTopology(Topology):
    """A topology whose channels are two-ended links."""

    @property
    def channel_model(self) -> ChannelModel:
        return ChannelModel.POINT_TO_POINT

    @abstractmethod
    def links(self) -> Iterator[tuple[int, int]]:
        """Yield each undirected link exactly once as ``(u, v)`` with u < v."""

    def num_links(self) -> int:
        """Number of undirected links."""
        return sum(1 for _ in self.links())

    def to_networkx(self):
        """Build a ``networkx.Graph`` view (requires the optional extra)."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        graph.add_edges_from(self.links())
        return graph


class HypergraphTopology(Topology):
    """A topology whose channels are multi-ended hypergraph nets."""

    @property
    def channel_model(self) -> ChannelModel:
        return ChannelModel.HYPERGRAPH_NET

    @abstractmethod
    def nets(self) -> Sequence[tuple[int, ...]]:
        """All hypergraph nets, each as the tuple of member nodes."""

    @abstractmethod
    def nets_of(self, node: int) -> tuple[int, ...]:
        """Indices (into :meth:`nets`) of the nets ``node`` belongs to."""

    def num_nets(self) -> int:
        """Number of hypergraph nets."""
        return len(self.nets())

    def shared_net(self, node_a: int, node_b: int) -> int | None:
        """Identifier of a net containing both nodes, or ``None``.

        ``None`` when the nodes share no net, and also when
        ``node_a == node_b`` (a packet never traverses a net to stay put).
        If several nets contain both nodes, the first net in
        ``nets_of(node_b)`` order wins; on hypermeshes the shared net is
        unique, so the tiebreak never fires there.

        The generic implementation memoizes a ``neighbour -> net`` mapping
        per node on first use, so the word-level simulator's hot loop pays
        one dict probe instead of a set intersection per proposal.
        Subclasses with closed-form structure (:class:`~repro.networks.
        hypermesh.Hypermesh`) override it without any cache at all.
        """
        lookup: dict[int, dict[int, int]] | None
        lookup = getattr(self, "_shared_net_cache", None)
        if lookup is None:
            lookup = {}
            self._shared_net_cache = lookup
        per_node = lookup.get(node_b)
        if per_node is None:
            self.validate_node(node_a)
            per_node = {}
            nets = self.nets()
            for net in self.nets_of(node_b):
                for member in nets[net]:
                    if member != node_b:
                        per_node.setdefault(member, net)
            lookup[node_b] = per_node
        return per_node.get(node_a)

    def to_networkx(self):
        """Clique-expansion ``networkx.Graph`` (each net becomes a clique).

        Distances in the clique expansion equal hypermesh distances, which is
        what the brute-force validators need.
        """
        import networkx as nx
        from itertools import combinations

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        for net in self.nets():
            graph.add_edges_from(combinations(net, 2))
        return graph
