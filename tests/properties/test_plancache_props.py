"""Digest-sensitivity properties of the routing-plan cache key.

The plan cache's safety rests on one claim: **any** change to a routing
problem that could change the engine's output changes the
:class:`~repro.sim.plancache.PlanKey` digest.  Hypothesis mutates each key
component — topology, demand set, router, arbitration, and fault model —
one at a time and asserts the digest moves (and never collides across a
generated population).  The fault component gets extra scrutiny: every
field of an enabled :class:`~repro.faults.FaultModel` must perturb the
fingerprint, a disabled model must key identically to no model at all, and
a faulted run must never be served a fault-free blob (the regression the
schema-2 key exists to prevent).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.faults import FaultModel
from repro.networks import Hypercube, Mesh2D, Torus2D
from repro.sim import PlanCache, plan_key, route_demands
from repro.sim.plancache import fault_fingerprint
from repro.sim.routers import router_for


def _key(topo, demands, arbitration="overtaking", fault_model=None):
    sources = [s for s, _ in demands]
    dests = [d for _, d in demands]
    key = plan_key(
        topo, sources, dests, router_for(topo), arbitration, fault_model
    )
    assert key is not None
    return key


@st.composite
def demand_set(draw, n):
    k = draw(st.integers(1, n))
    return draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=k,
            max_size=k,
        )
    )


@given(demand_set(n=16), st.data())
def test_any_single_demand_mutation_changes_digest(demands, data):
    topo = Mesh2D(4)
    base = _key(topo, demands)
    idx = data.draw(st.integers(0, len(demands) - 1))
    src, dst = demands[idx]
    new_src = data.draw(st.integers(0, 15).filter(lambda v: v != src))
    mutated = list(demands)
    mutated[idx] = (new_src, dst)
    assert _key(topo, mutated).digest != base.digest
    mutated[idx] = (src, data.draw(st.integers(0, 15).filter(lambda v: v != dst)))
    assert _key(topo, mutated).digest != base.digest
    # Demand ORDER is part of the problem (packet ids feed arbitration).
    if len(demands) > 1 and demands[0] != demands[-1]:
        swapped = list(demands)
        swapped[0], swapped[-1] = swapped[-1], swapped[0]
        assert _key(topo, swapped).digest != base.digest


@given(demand_set(n=16))
def test_topology_router_and_arbitration_move_the_digest(demands):
    digests = {
        _key(topo, demands, arbitration).digest
        for topo in (Mesh2D(4), Torus2D(4), Hypercube(4))
        for arbitration in ("overtaking", "fifo")
    }
    assert len(digests) == 6  # all distinct: no component is ignored


@st.composite
def enabled_fault_model(draw):
    links = [(i, i + 1) for i in range(0, 14)]
    model = FaultModel(
        seed=draw(st.integers(0, 1000)),
        link_failures=frozenset(
            draw(st.sets(st.sampled_from(links), min_size=1, max_size=4))
        ),
        node_failures=frozenset(draw(st.sets(st.integers(0, 15), max_size=3))),
        drop_prob=draw(st.sampled_from([0.1, 0.25, 0.5])),
        retry_limit=draw(st.sampled_from([None, 0, 2])),
    )
    assert model.enabled
    return model


@given(enabled_fault_model(), st.data())
def test_every_fault_field_perturbs_the_fingerprint(model, data):
    base = model.fingerprint()
    mutations = {
        "seed": model.with_(seed=model.seed + 1),
        "link_failures": model.with_(
            link_failures=model.link_failures | {(14, 15)}
        ),
        "node_failures": model.with_(
            node_failures=model.node_failures
            ^ {data.draw(st.integers(0, 15))}
        ),
        "link_fail_fraction": model.with_(link_fail_fraction=0.5),
        "drop_prob": model.with_(drop_prob=model.drop_prob / 2),
        "retry_limit": model.with_(
            retry_limit=5 if model.retry_limit is None else None
        ),
    }
    for field, mutated in mutations.items():
        assert mutated.fingerprint() != base, f"{field} ignored by fingerprint"
    # And the fingerprint difference propagates into the PlanKey digest.
    demands = [(0, 15), (3, 7)]
    topo = Mesh2D(4)
    assert (
        _key(topo, demands, fault_model=model).digest
        != _key(topo, demands, fault_model=mutations["seed"]).digest
    )


@given(st.lists(enabled_fault_model(), min_size=2, max_size=8))
def test_no_fingerprint_collisions_across_population(models):
    fingerprints = {}
    for model in models:
        fp = model.fingerprint()
        if fp in fingerprints:
            assert fingerprints[fp] == model, "fingerprint collision"
        fingerprints[fp] = model


def test_disabled_model_keys_like_no_model():
    assert fault_fingerprint(None) == "none"
    assert fault_fingerprint(FaultModel(seed=42)) == "none"
    topo = Mesh2D(4)
    demands = [(0, 15)]
    assert (
        _key(topo, demands, fault_model=FaultModel(seed=9)).digest
        == _key(topo, demands, fault_model=None).digest
    )


def test_faulted_run_never_serves_a_fault_free_blob():
    """Regression for the headline cache hazard: an active fault model
    replaying a fault-free plan would silently un-break the machine."""
    topo = Mesh2D(4)
    demands = [(i, 15 - i) for i in range(16)]
    cache = PlanCache()
    fault_free = route_demands(topo, demands, cache=cache)
    assert cache.counters()["stores"] == 1

    model = FaultModel(seed=1, link_failures={(5, 6), (9, 10)})
    faulted = route_demands(topo, demands, fault_model=model, cache=cache)
    counters = cache.counters()
    assert counters["hits"] == 0, "faulted run replayed a fault-free plan"
    assert counters["misses"] == 2 and counters["stores"] == 2

    # Each variant replays only its own blob, bit-identically.
    again_faulted = route_demands(topo, demands, fault_model=model, cache=cache)
    again_free = route_demands(topo, demands, cache=cache)
    assert cache.counters()["hits"] == 2
    assert list(again_faulted.steps) == list(faulted.steps)
    assert again_faulted.stats == faulted.stats
    assert list(again_free.steps) == list(fault_free.steps)
    assert again_free.stats == fault_free.stats
    assert list(faulted.steps) != list(fault_free.steps)
