"""Unit tests for the per-topology butterfly-exchange lowerings."""

import pytest

from repro.core import (
    butterfly_exchange_schedule,
    hypercube_bit_swap_schedule,
    hypercube_exchange_schedule,
    hypermesh_exchange_schedule,
    mesh_exchange_schedule,
)
from repro.networks import Hypercube, Hypermesh2D, Mesh2D, Torus2D
from repro.routing import butterfly_exchange


class TestHypercubeExchange:
    @pytest.mark.parametrize("bit", range(4))
    def test_one_step_and_valid(self, bit):
        cube = Hypercube(4)
        sched = hypercube_exchange_schedule(cube, bit)
        sched.validate()
        assert sched.num_steps == 1
        assert sched.logical == butterfly_exchange(16, bit)

    def test_every_packet_moves(self):
        sched = hypercube_exchange_schedule(Hypercube(3), 1)
        assert len(sched.steps[0]) == 8


class TestHypercubeBitSwap:
    def test_two_steps_and_valid(self):
        cube = Hypercube(4)
        sched = hypercube_bit_swap_schedule(cube, 0, 3)
        sched.validate()
        assert sched.num_steps == 2

    def test_logical_swaps_bits(self):
        cube = Hypercube(4)
        sched = hypercube_bit_swap_schedule(cube, 1, 2)
        for i in range(16):
            expected = i
            b1, b2 = (i >> 1) & 1, (i >> 2) & 1
            if b1 != b2:
                expected = i ^ 0b110
            assert sched.logical[i] == expected

    def test_agreeing_bits_stay(self):
        sched = hypercube_bit_swap_schedule(Hypercube(3), 0, 2)
        assert 0 not in sched.steps[0]  # bits agree (0,0)
        assert 5 not in sched.steps[0]  # bits agree (1,1)

    def test_same_bit_rejected(self):
        with pytest.raises(ValueError):
            hypercube_bit_swap_schedule(Hypercube(3), 1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            hypercube_bit_swap_schedule(Hypercube(3), 0, 3)


class TestHypermeshExchange:
    @pytest.mark.parametrize("bit", range(4))
    def test_one_step_and_valid(self, bit):
        hm = Hypermesh2D(4)
        sched = hypermesh_exchange_schedule(hm, bit)
        sched.validate()
        assert sched.num_steps == 1
        assert sched.logical == butterfly_exchange(16, bit)

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError):
            hypermesh_exchange_schedule(Hypermesh2D(4), 4)

    def test_non_power_of_two_side_rejected(self):
        with pytest.raises(ValueError):
            hypermesh_exchange_schedule(Hypermesh2D(3), 0)


class TestMeshExchange:
    @pytest.mark.parametrize("bit,expected_steps", [(0, 1), (1, 2), (2, 1), (3, 2)])
    def test_step_counts(self, bit, expected_steps):
        # side 4: column bits 0-1 cost 2^bit; row bits 2-3 cost 2^(bit-2).
        mesh = Mesh2D(4)
        sched = mesh_exchange_schedule(mesh, bit)
        sched.validate()
        assert sched.num_steps == expected_steps
        assert sched.logical == butterfly_exchange(16, bit)

    def test_total_over_all_stages_matches_paper(self):
        # Sum over all log N stages = 2 (sqrt(N) - 1).
        for side in (2, 4, 8):
            mesh = Mesh2D(side)
            width = (side * side).bit_length() - 1
            total = sum(
                mesh_exchange_schedule(mesh, b).num_steps for b in range(width)
            )
            assert total == 2 * (side - 1)

    def test_works_on_torus(self):
        torus = Torus2D(4)
        sched = mesh_exchange_schedule(torus, 3)
        sched.validate()

    def test_every_packet_moves_every_step(self):
        sched = mesh_exchange_schedule(Mesh2D(4), 1)
        for step in sched.steps:
            assert len(step) == 16

    def test_bit_out_of_range(self):
        with pytest.raises(ValueError):
            mesh_exchange_schedule(Mesh2D(4), 4)


class TestDispatch:
    def test_dispatches_by_type(self):
        assert butterfly_exchange_schedule(Hypercube(4), 0).num_steps == 1
        assert butterfly_exchange_schedule(Hypermesh2D(4), 3).num_steps == 1
        assert butterfly_exchange_schedule(Mesh2D(4), 3).num_steps == 2
        assert butterfly_exchange_schedule(Torus2D(4), 3).num_steps == 2

    def test_general_hypermesh_dispatched(self):
        from repro.networks import Hypermesh

        sched = butterfly_exchange_schedule(Hypermesh(4, 3), 0)
        sched.validate()
        assert sched.num_steps == 1

    def test_unknown_type_rejected(self):
        from repro.networks import Mesh

        with pytest.raises(TypeError):
            butterfly_exchange_schedule(Mesh((4, 4)), 0)
