"""Unit tests for the schedule timeline renderers and step tracing."""

from repro.core import hypermesh_bit_reversal_schedule, map_fft
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.routing import bit_reversal
from repro.sim import route_permutation
from repro.sim.tracing import (
    StepTracer,
    render_occupancy,
    render_step_profile,
    render_timeline,
)


class TestTimeline:
    def test_rows_and_columns(self):
        sched = hypermesh_bit_reversal_schedule(Hypermesh2D(4))
        art = render_timeline(sched)
        lines = art.splitlines()
        assert len(lines) == 1 + 16  # header + one row per packet
        # The header shows one column per step.
        assert lines[0].count("s") >= sched.num_steps

    def test_truncation(self):
        sched = hypermesh_bit_reversal_schedule(Hypermesh2D(8))
        art = render_timeline(sched, max_packets=5)
        assert "more packets" in art
        assert len(art.splitlines()) == 1 + 5 + 1

    def test_stationary_packets_dotted(self):
        sched = map_fft(Hypercube(2)).bitrev_schedule
        art = render_timeline(sched)
        # 4-point bit reversal fixes packets 0 and 3: dots in their rows.
        row0 = art.splitlines()[1]
        assert "." in row0

    def test_destination_column_correct(self):
        sched = hypermesh_bit_reversal_schedule(Hypermesh2D(4))
        rows = render_timeline(sched).splitlines()[1:]
        last_fields = [line.split()[-1] for line in rows]
        # Packet 1's destination is bit_reverse(0001) = 1000 = node 8.
        assert last_fields[1] == "8"


class TestOccupancy:
    def test_permutation_schedules_stay_at_one(self):
        sched = hypermesh_bit_reversal_schedule(Hypermesh2D(4))
        art = render_occupancy(sched)
        # Clos phases are permutations of positions: occupancy 1 always.
        assert "  1  #" in art.replace("            ", "  ")

    def test_hypercube_bitrev_buffers_two(self):
        sched = map_fft(Hypercube(4)).bitrev_schedule
        art = render_occupancy(sched)
        assert "##" in art  # swap midpoints hold 2 packets

    def test_row_count(self):
        sched = map_fft(Hypercube(3)).bitrev_schedule
        art = render_occupancy(sched)
        assert len(art.splitlines()) == 1 + sched.num_steps


class TestStepTracer:
    def test_records_every_step(self):
        tracer = StepTracer()
        result = route_permutation(Mesh2D(4), bit_reversal(16), on_step=tracer)
        assert len(tracer.records) == result.stats.steps
        assert [rec.step for rec in tracer.records] == list(
            range(result.stats.steps)
        )
        # The tracer's move snapshots are the schedule, seen live.
        assert [rec.moves for rec in tracer.records] == list(
            result.schedule.steps
        )

    def test_cumulative_counters_monotone(self):
        tracer = StepTracer()
        route_permutation(Mesh2D(4), bit_reversal(16), on_step=tracer)
        delivered = [rec.delivered for rec in tracer.records]
        blocked = [rec.blocked_moves for rec in tracer.records]
        assert delivered == sorted(delivered) and delivered[-1] == 16
        assert blocked == sorted(blocked)

    def test_render_tabulates_all_steps(self):
        tracer = StepTracer()
        result = route_permutation(Mesh2D(4), bit_reversal(16), on_step=tracer)
        art = tracer.render()
        assert len(art.splitlines()) == 1 + result.stats.steps
        assert art.splitlines()[0].startswith("step")


class TestStepProfile:
    def test_timed_profile_has_usec_column_and_total(self):
        # Timing is opt-in since the plan/replay PR: profiles request it.
        result = route_permutation(Mesh2D(4), bit_reversal(16), timing=True)
        art = render_step_profile(result.stats)
        lines = art.splitlines()
        assert "usec" in lines[0]
        assert lines[-1].startswith("total ")
        assert len(lines) == 1 + result.stats.steps + 1

    def test_untimed_profile_omits_timing(self):
        from repro.sim import RoutingStats

        stats = RoutingStats(steps=2, per_step_moves=[4, 2])
        art = render_step_profile(stats)
        assert "usec" not in art
        assert len(art.splitlines()) == 1 + 2

    def test_bar_scales_with_moves(self):
        from repro.sim import RoutingStats

        stats = RoutingStats(steps=2, per_step_moves=[20, 1])
        lines = render_step_profile(stats).splitlines()[1:]
        assert lines[0].count("#") > lines[1].count("#")
