"""Property-based tests: the Benes network is rearrangeable (every
permutation routes), and its switch settings are always well-formed."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.networks import BenesNetwork
from repro.routing import Permutation


@st.composite
def benes_cases(draw, max_width=5):
    width = draw(st.integers(1, max_width))
    n = 1 << width
    perm = Permutation(draw(st.permutations(list(range(n)))))
    return BenesNetwork(n), perm


@given(benes_cases())
def test_every_permutation_routes(case):
    bn, perm = case
    routing = bn.route(perm)
    assert np.array_equal(bn.simulate(routing), perm.destinations)


@given(benes_cases())
def test_settings_well_formed(case):
    bn, perm = case
    routing = bn.route(perm)
    assert routing.num_stages == 2 * (bn.num_ports.bit_length() - 1) - 1
    for stage in routing.settings:
        assert len(stage) == bn.num_ports // 2
        assert all(isinstance(s, bool) for s in stage)


@given(benes_cases(max_width=4))
def test_inverse_also_routes(case):
    bn, perm = case
    inv = perm.inverse()
    assert np.array_equal(bn.simulate(bn.route(inv)), inv.destinations)


@given(benes_cases(max_width=4))
def test_routing_is_deterministic(case):
    bn, perm = case
    a = bn.route(perm)
    b = bn.route(perm)
    assert a.settings == b.settings
