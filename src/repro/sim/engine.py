"""The synchronous word-level network simulator.

One *data-transfer step* advances the whole machine at once, exactly as the
paper's SIMD word-level model prescribes:

* every directed link of a point-to-point network forwards at most one
  packet;
* every hypermesh net realizes at most one partial permutation (each member
  node injects at most one packet into the net and accepts at most one from
  it);
* packets that lose arbitration wait in unbounded FIFO buffers at their
  current node.

:func:`route_permutation` drives one packet per node adaptively with a
per-topology :class:`~repro.sim.routers.Router` and **records** every move,
returning a :class:`~repro.sim.schedule.CommSchedule` plus congestion
statistics.  :func:`route_demands` generalizes to arbitrary multisets of
``(source, destination)`` packets — h-relations — under the very same
channel constraints, which is how the blocked FFT's m-relation bit reversal
can be *executed* rather than only planned.

Arbitration policies
--------------------

Buffers are FIFO, but *channel arbitration* admits two disciplines, chosen
with the ``arbitration`` keyword:

``"overtaking"`` (default)
    Every queued packet proposes its next hop each step, in node order then
    FIFO position.  A packet behind a blocked head-of-line packet may
    therefore leave first if its channel is free.  This is the seed engine's
    behaviour and the baseline all published step counts use;
    ``blocked_moves`` counts every denied proposal, including overtakers'.

``"fifo"``
    Head-of-line-respecting: the first denied packet in a queue blocks the
    rest of that queue for the step, so departures respect arrival order
    exactly.  ``blocked_moves`` counts only the head denial (the packets
    behind it never reach a channel), and ``max_queue_depth`` measures
    buffering under strict FIFO service.

Engine internals and the equivalence guarantee
----------------------------------------------

The arbitration loop is indexed rather than scanned: an active-node
worklist visits only nodes with queued packets, queues are intrusive
doubly-linked lists giving O(1) grant/dequeue, next hops and hypermesh net
ids are cached per packet position (routers are pure functions of
``(current, dest)``, so each is computed once per hop instead of once per
step), and ``max_queue_depth`` is maintained incrementally.  None of this
changes behaviour: under the default policy the engine produces
**bit-identical** schedules and statistics to the seed loop preserved in
:mod:`repro.sim._reference`, which the equivalence suite asserts on every
topology family.

Instrumentation: pass ``on_step`` to observe each committed step, and pass
``timing=True`` to record host-side per-step wall-clock into
``RoutingStats.per_step_seconds`` (:mod:`repro.sim.tracing` renders both).
Timing is opt-in because the two clock reads per step are measurable
overhead at small N; untimed runs leave ``per_step_seconds`` empty, which
the renderers and equality comparisons already tolerate.

Plan caching
------------

Routing is a pure function of ``(topology, demands, router, arbitration)``,
so both entry points accept a ``cache=`` argument (see
:mod:`repro.sim.plancache`): ``"memory"``/``"disk"``/a path/a
:class:`~repro.sim.plancache.PlanCache` consult the cache before
arbitrating and record the schedule after a miss; a hit replays the stored
steps and counters **bit-identically** (the equivalence suite enforces
this).  ``cache=False`` forces live routing even when a process-wide
default is installed via
:func:`~repro.sim.plancache.set_process_default`; runs with ``on_step`` or
``timing`` instrumentation always route live (counted as ``bypassed``).

Fault injection
---------------

Both entry points accept ``fault_model=`` (a
:class:`~repro.faults.model.FaultModel`).  A model with nothing enabled is
contractually a **no-op**: the engine takes the fault-free path above and
output is bit-identical to passing no model (the fuzz suite enforces
this).  An enabled model routes through the selected backend's *degraded*
core instead (``"indexed"`` ->
:func:`~repro.sim.degraded.route_core_degraded`, ``"numpy"``/``"numba"``
-> :func:`~repro.sim.degraded.numpy_degraded_core`; bit-identical by
contract) — minimal detours around dead links/nodes/nets, serialized
sub-transfers on degraded hypermesh nets, and retry/drop semantics with
``dropped`` / ``retried`` accounting on :class:`RoutingStats` (observable
per event via ``on_fault``).  The fault configuration is folded into the
plan-cache key,
so a faulted run can never replay a fault-free plan or vice versa; runs
carrying an ``on_fault`` hook route live (counted as ``fault_bypassed``).
See docs/FAULTS.md for the full semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Mapping, Sequence

import numpy as np

from ..faults.model import FaultModel
from ..networks.base import ChannelModel, HypergraphTopology, Topology
from ..routing.permutation import Permutation
from . import plancache as _plancache
from .backends import resolve_backend, resolve_degraded_backend
from .degraded import FaultCallback
from .routers import Router, router_for
from .schedule import CommSchedule, ScheduleError
from .stats import RoutingStats

__all__ = [
    "ARBITRATION_POLICIES",
    "StepCallback",
    "RoutedPermutation",
    "RoutedDemands",
    "route_permutation",
    "route_demands",
    "replay_schedule",
]

#: Channel-arbitration disciplines accepted by the engine.
ARBITRATION_POLICIES = ("overtaking", "fifo")

#: Smallest batch worth handing to ``Router.next_hop_array``: below this,
#: NumPy's fixed per-call overhead loses to scalar next-hop computation.
_VECTOR_REFILL_MIN = 64

#: Queue depth at which the engine abandons compact list queues: past this,
#: ``list.remove`` degrades toward the seed loop's O(depth) scans and the
#: intrusive linked lists win.
_COMPACT_MAX_DEPTH = 8

#: Signature of the ``on_step`` instrumentation hook: called after each
#: committed step with ``(step_index, moves, stats)``.  ``moves`` is the
#: engine's live step record — treat it as read-only.
StepCallback = Callable[[int, Mapping[int, int], RoutingStats], None]


def _degraded_max_steps(
    base: int, fault_model: FaultModel, packets: int
) -> int:
    """Inflate the fault-free ``max_steps`` default for a degraded run.

    The bound is derived from what a degraded run can legitimately spend:

    * ``4 * base`` covers minimal detours on the surviving graph (longer
      than the intact diameter) plus the congestion they induce;
    * with a **finite retry budget**, lossy transmission consumes at most
      ``retry_limit + 1`` attempts per packet before the packet drops, and
      every step in which *all* granted transmissions fail still burns at
      least one attempt from some packet's budget — so
      ``packets * (retry_limit + 1)`` extra steps suffice for any drop
      probability, however close to 1;
    * with an **unbounded** retry budget, expected transmissions stretch by
      ``1/(1 - p)``; the divisor is clamped so ``drop_prob=1`` still
      terminates in a :class:`ScheduleError` rather than spinning forever.

    The old fixed ``scale = 4.0 / max(1-p, 0.02)`` under-inflated exactly
    in the finite-budget case: a packet with ``p`` close to 1 and a large
    ``retry_limit`` is *legal but slow* (expected ``1/(1-p)`` steps per
    hop, far beyond the clamped 50x) and used to hit the ceiling mid-run.
    """
    bound = 4 * base  # headroom for minimal detours, rerouted congestion
    if fault_model.drop_prob > 0.0:
        if fault_model.retry_limit is not None:
            bound += packets * (int(fault_model.retry_limit) + 1)
        else:
            bound = int(bound / max(1.0 - fault_model.drop_prob, 0.02))
    return bound + 16


@dataclass(frozen=True)
class RoutedPermutation:
    """Result of adaptively routing a permutation."""

    schedule: CommSchedule
    stats: RoutingStats


@dataclass(frozen=True)
class RoutedDemands:
    """Result of adaptively routing an arbitrary packet multiset.

    ``steps[s][packet_index] = node moved to during step s`` — the same
    time-expanded encoding as :class:`CommSchedule`, but packets are
    identified by their index into ``demands`` and may start anywhere.
    """

    demands: tuple[tuple[int, int], ...]
    steps: tuple[dict[int, int], ...]
    stats: RoutingStats


def _route_core(
    topology: Topology,
    sources: Sequence[int],
    dests: Sequence[int],
    router: Router,
    max_steps: int,
    *,
    arbitration: str = "overtaking",
    on_step: StepCallback | None = None,
    timing: bool = False,
) -> tuple[list[dict[int, int]], RoutingStats]:
    """Shared indexed arbitration loop for permutation and h-relation routing."""
    if arbitration not in ARBITRATION_POLICIES:
        raise ValueError(
            f"unknown arbitration policy {arbitration!r}; "
            f"expected one of {ARBITRATION_POLICIES}"
        )
    fifo = arbitration == "fifo"
    n = topology.num_nodes
    hypergraph = topology.channel_model is ChannelModel.HYPERGRAPH_NET
    if hypergraph and not isinstance(topology, HypergraphTopology):
        raise TypeError(
            f"hypergraph channel model requires a HypergraphTopology, "
            f"got {type(topology).__name__}"
        )
    shared_net = topology.shared_net if hypergraph else None
    next_hop = router.next_hop
    # Routers that answer elementwise (next_hop_array) let the engine refill
    # the per-packet hop cache in one NumPy call per step instead of one
    # Python call per hop.  Hypergraph routing stays scalar: it needs the
    # net id alongside the hop.
    next_hop_array = (
        getattr(router, "next_hop_array", None) if not hypergraph else None
    )

    npk = len(sources)
    position = list(sources)
    dests = list(dests)

    # Two FIFO queue representations, used in sequence.  While the network
    # is crowded and queues are shallow ("compact" phase), one Python list
    # per node — the seed loop's exact layout — wins: C-speed append and
    # remove beat Python-level pointer surgery, and scanning range(n) costs
    # nothing when most nodes hold a packet.  Once traffic thins, or a queue
    # deepens past _COMPACT_MAX_DEPTH (where list.remove degrades to the
    # seed's O(depth) scans), the engine switches to intrusive doubly
    # linked lists with an active-node worklist: O(1) unlink, no empty-node
    # scanning.  in_flight never grows and the depth high-water mark never
    # falls, so the switch happens at most once per run.
    in_flight = sum(
        1 for pid in range(npk) if position[pid] != dests[pid]
    )

    queues: list[list[int]] | None = None
    q_head: list[int] = []
    q_tail: list[int] = []
    q_len: list[int] = []
    q_prev: list[int] = []
    q_next: list[int] = []
    # Worklist of nodes holding packets, kept in ascending order so the
    # proposal sweep visits them exactly as the seed's range(n) scan did.
    active: list[int] = []
    in_active = bytearray(n)

    if 4 * in_flight >= n:
        # Crowded start: compact queues (allocating n lists only pays off
        # when most of them will hold something).
        queues = [[] for _ in range(n)]
        for pid in range(npk):
            node = position[pid]
            if node != dests[pid]:
                queues[node].append(pid)
        initial_depth = max(map(len, queues), default=0)
    else:
        # Sparse start: build the indexed structures directly.
        q_head = [-1] * n
        q_tail = [-1] * n
        q_len = [0] * n
        q_prev = [-1] * npk
        q_next = [-1] * npk
        for pid in range(npk):
            node = position[pid]
            if node != dests[pid]:
                tail = q_tail[node]
                if tail == -1:
                    q_head[node] = pid
                else:
                    q_next[tail] = pid
                    q_prev[pid] = tail
                q_tail[node] = pid
                q_len[node] += 1
        active = [node for node in range(n) if q_len[node]]
        for node in active:
            in_active[node] = 1
        initial_depth = max(q_len, default=0)

    # Per-packet caches: a deterministic router's next hop (and, on
    # hypergraph networks, the net it rides) is a function of the packet's
    # position, so compute it once per hop rather than once per step.
    NO_HOP = -2  # router said "already home" — mirror seed's skip-forever
    cached_next = [-1] * npk
    cached_net = [-1] * npk
    # On the vectorized path, packets whose cached hop must be (re)computed
    # before the next propose sweep: every in-flight packet now, then each
    # packet that moves without being delivered.
    stale: list[int] = (
        [pid for pid in range(npk) if position[pid] != dests[pid]]
        if next_hop_array is not None
        else []
    )

    stats = RoutingStats()
    delivered = stats.delivered = npk - in_flight
    stats.max_queue_depth = initial_depth
    steps: list[dict[int, int]] = []
    blocked = 0  # stats.blocked_moves, kept in a local off the hot path
    # Host timing is opt-in: the two clock reads and the append cost real
    # time per step (visible at small N), so untimed runs skip them.
    per_step_seconds = stats.per_step_seconds if timing else None

    while in_flight:
        t0 = perf_counter() if per_step_seconds is not None else 0.0
        if stats.steps >= max_steps:
            raise ScheduleError(
                f"{in_flight} packets undelivered after {max_steps} steps"
            )
        if stale:
            if len(stale) >= _VECTOR_REFILL_MIN:
                hops = next_hop_array(
                    [position[pid] for pid in stale],
                    [dests[pid] for pid in stale],
                ).tolist()
                for pid, hop in zip(stale, hops):
                    cached_next[pid] = hop
            else:
                # Below the crossover, NumPy's fixed per-call cost loses to
                # scalar routing (the tail of a run is many sparse steps).
                for pid in stale:
                    hop = next_hop(position[pid], dests[pid])
                    cached_next[pid] = NO_HOP if hop is None else hop
            stale = []
        if queues is not None and (
            4 * in_flight < n or stats.max_queue_depth > _COMPACT_MAX_DEPTH
        ):
            # One-way switch: rebuild the compact queues as linked lists
            # (FIFO order preserved) and record which nodes hold packets.
            q_head = [-1] * n
            q_tail = [-1] * n
            q_len = [0] * n
            q_prev = [-1] * npk
            q_next = [-1] * npk
            for node in range(n):
                q = queues[node]
                if not q:
                    continue
                active.append(node)
                in_active[node] = 1
                prev = -1
                for pid in q:
                    if prev == -1:
                        q_head[node] = pid
                    else:
                        q_next[prev] = pid
                        q_prev[pid] = prev
                    prev = pid
                q_tail[node] = prev
                q_len[node] = len(q)
            queues = None
        moves: dict[int, int] = {}
        # The commit below applies `granted`, an explicit list in grant
        # (= priority) order, never `moves.items()`: the step record's dict
        # iteration order must be a *consequence* of arbitration order, not
        # an input to the committed state — a backend that built the dict
        # differently would otherwise silently change queue contents.
        granted: list[tuple[int, int]] = []
        # Channels claimed this step, encoded as ints for cheap set probes:
        # directed link (node, nxt) -> node * n + nxt; net port pairs
        # (net, node) -> net * n + node (separate inject/deliver sets).
        used_links: set[int] = set()
        used_inject: set[int] = set()
        used_deliver: set[int] = set()

        # Propose in deterministic order: node index, then FIFO position.
        # Two sweeps with identical arbitration bodies — the compact phase
        # iterates each node's list, the indexed phase walks linked queues.
        if queues is not None:
            for node in range(n):
                for pid in queues[node]:
                    nxt = cached_next[pid]
                    if nxt == -1:
                        hop = next_hop(node, dests[pid])
                        if hop is None:
                            nxt = cached_next[pid] = NO_HOP
                        else:
                            nxt = cached_next[pid] = hop
                            if hypergraph:
                                net = shared_net(node, hop)
                                if net is None:
                                    raise ScheduleError(
                                        f"router proposed non-net hop "
                                        f"{node} -> {hop}"
                                    )
                                cached_net[pid] = net
                    if nxt == NO_HOP:
                        continue
                    if hypergraph:
                        inject = cached_net[pid] * n + node
                        deliver = cached_net[pid] * n + nxt
                        if inject in used_inject or deliver in used_deliver:
                            blocked += 1
                            if fifo:
                                break  # head of line holds the queue
                            continue
                        used_inject.add(inject)
                        used_deliver.add(deliver)
                    else:
                        link = node * n + nxt
                        if link in used_links:
                            blocked += 1
                            if fifo:
                                break
                            continue
                        used_links.add(link)
                    moves[pid] = nxt
                    granted.append((pid, nxt))
        else:
            for node in active:
                pid = q_head[node]
                while pid != -1:
                    nxt = cached_next[pid]
                    if nxt == -1:
                        hop = next_hop(node, dests[pid])
                        if hop is None:
                            nxt = cached_next[pid] = NO_HOP
                        else:
                            nxt = cached_next[pid] = hop
                            if hypergraph:
                                net = shared_net(node, hop)
                                if net is None:
                                    raise ScheduleError(
                                        f"router proposed non-net hop "
                                        f"{node} -> {hop}"
                                    )
                                cached_net[pid] = net
                    if nxt == NO_HOP:
                        pid = q_next[pid]
                        continue
                    if hypergraph:
                        inject = cached_net[pid] * n + node
                        deliver = cached_net[pid] * n + nxt
                        if inject in used_inject or deliver in used_deliver:
                            blocked += 1
                            if fifo:
                                break  # head of line holds the queue
                            pid = q_next[pid]
                            continue
                        used_inject.add(inject)
                        used_deliver.add(deliver)
                    else:
                        link = node * n + nxt
                        if link in used_links:
                            blocked += 1
                            if fifo:
                                break
                            pid = q_next[pid]
                            continue
                        used_links.add(link)
                    moves[pid] = nxt
                    granted.append((pid, nxt))
                    pid = q_next[pid]

        if not moves:
            raise ScheduleError(
                f"deadlock: {in_flight} packets queued but none can move"
            )

        # Apply the granted moves.
        grew: list[int] = []
        max_depth = stats.max_queue_depth
        if queues is not None:
            for pid, nxt in granted:
                queues[position[pid]].remove(pid)
                position[pid] = nxt
                if nxt == dests[pid]:
                    # Delivered: its stale cache entry is never read again.
                    delivered += 1
                    in_flight -= 1
                else:
                    if next_hop_array is not None:
                        stale.append(pid)  # batch refill overwrites it
                    else:
                        cached_next[pid] = -1
                    queues[nxt].append(pid)
                    grew.append(nxt)
            # Only queues that received a packet can set a depth record.
            for node in grew:
                if len(queues[node]) > max_depth:
                    max_depth = len(queues[node])
        else:
            newly_active: list[int] = []
            for pid, nxt in granted:
                node = position[pid]
                prv, fol = q_prev[pid], q_next[pid]
                if prv == -1 and fol == -1:
                    # Singleton queue (the common case under light load):
                    # the packet's own links are already -1.
                    q_head[node] = -1
                    q_tail[node] = -1
                else:
                    if prv == -1:
                        q_head[node] = fol
                    else:
                        q_next[prv] = fol
                    if fol == -1:
                        q_tail[node] = prv
                    else:
                        q_prev[fol] = prv
                    q_prev[pid] = q_next[pid] = -1
                q_len[node] -= 1

                position[pid] = nxt
                if nxt == dests[pid]:
                    # Delivered: its stale cache entry is never read again.
                    delivered += 1
                    in_flight -= 1
                else:
                    if next_hop_array is not None:
                        stale.append(pid)  # batch refill overwrites it
                    else:
                        cached_next[pid] = -1
                    tail = q_tail[nxt]
                    if tail == -1:
                        q_head[nxt] = pid
                    else:
                        q_next[tail] = pid
                        q_prev[pid] = tail
                    q_tail[nxt] = pid
                    q_len[nxt] += 1
                    grew.append(nxt)
                    if not in_active[nxt]:
                        in_active[nxt] = 1
                        newly_active.append(nxt)

            # Refresh the worklist: drop drained nodes, merge new arrivals.
            still_active = []
            for node in active:
                if q_len[node]:
                    still_active.append(node)
                else:
                    in_active[node] = 0
            if newly_active:
                newly_active.sort()
                still_active += newly_active
                still_active.sort()  # two sorted runs: Timsort merge, O(len)
            active = still_active
            for node in grew:
                if q_len[node] > max_depth:
                    max_depth = q_len[node]

        steps.append(moves)
        stats.steps += 1
        stats.total_hops += len(moves)
        stats.per_step_moves.append(len(moves))
        stats.blocked_moves = blocked
        stats.delivered = delivered
        stats.max_queue_depth = max_depth
        if per_step_seconds is not None:
            per_step_seconds.append(perf_counter() - t0)
        if on_step is not None:
            on_step(stats.steps - 1, moves, stats)

    return steps, stats


def _resolve_plan_cache(
    cache,
    on_step: StepCallback | None,
    timing: bool,
    fault_hook: bool = False,
) -> "_plancache.PlanCache | None":
    """Normalize a ``cache=`` argument, honouring the process default.

    ``cache=None`` (the keyword's default) consults the process-wide
    default installed by :func:`repro.sim.plancache.set_process_default`;
    ``cache=False`` always routes live.  Instrumented runs (``on_step`` or
    ``timing``) bypass the cache — a replay has no live stats to stream and
    spent no per-step host time — and are counted as ``bypassed``.
    ``fault_hook`` marks a run with an active fault model carrying an
    ``on_fault`` hook: it bypasses for the same reason (a replay fires no
    fault events) but is counted separately as ``fault_bypassed`` so
    ``repro plans stats`` shows how much traffic fault instrumentation
    keeps out of the cache.
    """
    if cache is None:
        resolved = _plancache.process_default()
    else:
        resolved = _plancache.resolve_cache(cache)
    if resolved is None:
        return None
    if fault_hook:
        resolved.fault_bypassed += 1
        return None
    if on_step is not None or timing:
        resolved.bypassed += 1
        return None
    return resolved


def _route_or_replay(
    topology: Topology,
    sources: list[int],
    dests: list[int],
    router: Router,
    max_steps: int,
    *,
    arbitration: str,
    on_step: StepCallback | None,
    timing: bool,
    cache,
    fault_model: FaultModel | None = None,
    on_fault: FaultCallback | None = None,
    backend: str = "indexed",
) -> tuple[list[dict[int, int]], RoutingStats]:
    """Cache-aware front of the routing cores: replay a recorded plan on a
    hit, route live (and record) on a miss.

    ``backend`` selects the arbitration core (see
    :mod:`repro.sim.backends`); it is resolved *before* the cache is
    consulted so unknown names fail fast instead of being masked by a hit.
    It is deliberately **not** part of the plan key — all backends are
    bit-identical by contract, so a plan recorded by one replays for all.

    An *enabled* fault model routes through the backend's **degraded**
    core (:func:`~repro.sim.backends.resolve_degraded_backend`) — the
    indexed or the structure-of-arrays degraded loop, honoring
    ``backend=`` exactly as fault-free runs do — and folds its fingerprint
    into the plan key: the faulted and fault-free variants of one problem
    are distinct cache entries by construction.  A disabled model is
    treated exactly as no model at all.
    """
    if fault_model is not None and not fault_model.enabled:
        fault_model = None  # attached-but-empty: contractual no-op
    if arbitration not in ARBITRATION_POLICIES:
        raise ValueError(
            f"unknown arbitration policy {arbitration!r}; "
            f"expected one of {ARBITRATION_POLICIES}"
        )
    if fault_model is not None:
        route_core = resolve_degraded_backend(backend)
    else:
        route_core = resolve_backend(backend)
    cache_obj = _resolve_plan_cache(
        cache, on_step, timing,
        fault_hook=fault_model is not None and on_fault is not None,
    )
    key = None
    if cache_obj is not None:
        key = _plancache.plan_key(
            topology, sources, dests, router, arbitration, fault_model
        )
        if key is None:
            cache_obj.uncacheable += 1  # unregistered router: route live
        else:
            plan = cache_obj.get(key)
            if plan is not None:
                return plan.replay_steps(), plan.replay_stats()
    if fault_model is not None:
        steps, stats = route_core(
            topology,
            sources,
            dests,
            router,
            max_steps,
            fault_model,
            arbitration=arbitration,
            on_step=on_step,
            on_fault=on_fault,
            timing=timing,
        )
    else:
        steps, stats = route_core(
            topology,
            sources,
            dests,
            router,
            max_steps,
            arbitration=arbitration,
            on_step=on_step,
            timing=timing,
        )
    if key is not None:
        cache_obj.put(key, _plancache.CachedPlan.from_run(steps, stats))
    return steps, stats


def route_permutation(
    topology: Topology,
    perm: Permutation,
    router: Router | None = None,
    *,
    max_steps: int | None = None,
    arbitration: str = "overtaking",
    backend: str = "indexed",
    on_step: StepCallback | None = None,
    timing: bool = False,
    cache=None,
    fault_model: FaultModel | None = None,
    on_fault: FaultCallback | None = None,
) -> RoutedPermutation:
    """Route one packet per node to ``perm[node]`` and record the schedule.

    Parameters
    ----------
    topology:
        Network to route on.
    perm:
        Destination of the packet starting at each node.
    router:
        Routing discipline; defaults to the topology's canonical router.
        Must be deterministic — a pure function of ``(current, dest)`` —
        because the engine caches each packet's next hop per position.
    max_steps:
        Safety bound; defaults to ``10 * diameter + 10 * N`` which no
        deterministic minimal-path discipline on these topologies exceeds.
    arbitration:
        Channel-arbitration policy, ``"overtaking"`` (seed-identical
        default) or ``"fifo"`` — see the module docstring.
    backend:
        Arbitration core — ``"indexed"`` (default), ``"numpy"`` (the
        structure-of-arrays core), ``"numba"`` or ``"cupy"`` (optional;
        error if the package — and, for cupy, a CUDA device — is
        missing).  All backends are bit-identical by contract (schedule,
        stats, and plan-cache digests alike), so this only changes how
        fast the answer is computed; see :mod:`repro.sim.backends`.
        Fault-injected runs honor ``backend=`` too, through each
        backend's degraded core (``"cupy"`` is fault-free only and raises
        a ValueError when combined with ``fault_model=``).
    on_step:
        Optional :data:`StepCallback` invoked after every committed step.
    timing:
        Record host wall-clock per step into ``stats.per_step_seconds``
        (opt-in; untimed runs leave it empty and skip the clock reads).
    cache:
        Plan cache mode — ``False`` (route live even past a process
        default), ``"memory"``, ``"disk"``, a directory path, or a
        :class:`~repro.sim.plancache.PlanCache`.  ``None`` (default) uses
        the process default if one is installed.  A hit replays the
        recorded schedule and stats bit-identically; ``on_step``/``timing``
        runs bypass the cache.
    fault_model:
        Optional :class:`~repro.faults.model.FaultModel`.  Disabled models
        are bit-identical no-ops; enabled models reroute around dead
        links/nodes/nets, serialize degraded hypermesh nets, and apply
        retry/drop semantics (see the module docstring and docs/FAULTS.md).
        Note that a faulted permutation whose packets get *dropped* no
        longer realizes ``perm`` — ``schedule.validate()`` will then raise,
        by design.
    on_fault:
        Optional :data:`~repro.sim.degraded.FaultCallback` observing every
        retry and drop (only ever fired by an enabled fault model).

    Raises
    ------
    ScheduleError
        If packets are undeliverable within ``max_steps`` (e.g. a router
        proposing non-neighbours, which validation would also catch).
    UnroutableError
        If an enabled fault model leaves a packet's destination dead or
        partitioned away from its source.
    """
    n = topology.num_nodes
    if perm.n != n:
        raise ValueError(f"permutation on {perm.n} points, topology has {n} nodes")
    router = router or router_for(topology)
    if max_steps is None:
        max_steps = 10 * topology.diameter + 10 * n
        if fault_model is not None and fault_model.enabled:
            max_steps = _degraded_max_steps(max_steps, fault_model, n)

    steps, stats = _route_or_replay(
        topology,
        list(range(n)),
        perm.destinations.tolist(),
        router,
        max_steps,
        arbitration=arbitration,
        on_step=on_step,
        timing=timing,
        cache=cache,
        fault_model=fault_model,
        on_fault=on_fault,
        backend=backend,
    )
    schedule = CommSchedule(
        topology=topology, logical=perm, steps=tuple(steps)
    )
    return RoutedPermutation(schedule=schedule, stats=stats)


def _validate_demand_nodes(
    topology: Topology, demands: Sequence[tuple[int, int]]
) -> None:
    """Bounds-check every demand endpoint in one vectorized pass.

    Replaces the per-endpoint ``validate_node`` loop (two Python calls per
    packet) with a single NumPy comparison; on failure the first offending
    endpoint *in original order* (source before destination, pair by pair)
    is handed back to :meth:`~repro.networks.base.Topology.validate_node`
    so the error type and message stay exactly the seed's.  Inputs that do
    not pack into an integer array (exotic endpoint types) fall back to the
    original loop unchanged.
    """
    if not demands:
        return
    try:
        arr = np.asarray(demands)
    except (TypeError, ValueError):
        arr = None
    if arr is None or arr.ndim != 2 or arr.shape[1] != 2 or arr.dtype.kind not in "iu":
        for src, dst in demands:
            for node in (src, dst):
                # validate_node's range check would accept an in-range
                # float (0 <= 0.5 < n), which then explodes as a list
                # index deep in the arbitration loop — reject it here
                # with a message that names the actual problem.
                if not isinstance(node, (int, np.integer)):
                    raise ValueError(
                        f"demand endpoint {node!r} is not an integer node id"
                    )
            topology.validate_node(src)
            topology.validate_node(dst)
        return
    flat = arr.reshape(-1)  # row-major: src0, dst0, src1, dst1, ...
    bad = (flat < 0) | (flat >= topology.num_nodes)
    if bad.any():
        topology.validate_node(int(flat[int(np.argmax(bad))]))


def route_demands(
    topology: Topology,
    demands: Sequence[tuple[int, int]],
    router: Router | None = None,
    *,
    max_steps: int | None = None,
    arbitration: str = "overtaking",
    backend: str = "indexed",
    on_step: StepCallback | None = None,
    timing: bool = False,
    cache=None,
    fault_model: FaultModel | None = None,
    on_fault: FaultCallback | None = None,
) -> RoutedDemands:
    """Route an arbitrary packet multiset (an h-relation) adaptively.

    Each ``demands[k] = (source, destination)`` packet starts at its source;
    several packets may share a source or a destination — the channel
    constraints (one packet per directed link per step; one injection and
    one delivery per net port per step) still apply, so congestion shows up
    as steps, exactly as the word model prescribes.

    The ``max_steps`` default scales with the relation's degree ``h``.
    ``arbitration``, ``backend``, ``on_step``, ``timing``, ``cache``,
    ``fault_model`` and ``on_fault`` behave as in
    :func:`route_permutation`.
    """
    n = topology.num_nodes
    demands = list(demands)
    _validate_demand_nodes(topology, demands)
    router = router or router_for(topology)
    if max_steps is None:
        out = [0] * n
        inc = [0] * n
        for src, dst in demands:
            if src != dst:
                out[src] += 1
                inc[dst] += 1
        h = max(max(out, default=0), max(inc, default=0), 1)
        max_steps = h * (10 * topology.diameter + 10 * n)
        if fault_model is not None and fault_model.enabled:
            max_steps = _degraded_max_steps(
                max_steps, fault_model, len(demands)
            )

    sources = [src for src, _ in demands]
    dests = [dst for _, dst in demands]
    steps, stats = _route_or_replay(
        topology,
        sources,
        dests,
        router,
        max_steps,
        arbitration=arbitration,
        on_step=on_step,
        timing=timing,
        cache=cache,
        fault_model=fault_model,
        on_fault=on_fault,
        backend=backend,
    )
    return RoutedDemands(
        demands=tuple((int(s), int(d)) for s, d in demands),
        steps=tuple(steps),
        stats=stats,
    )


def replay_schedule(schedule: CommSchedule) -> int:
    """Validate a schedule against the hardware model and return its step
    count.  Thin convenience wrapper so benchmark code reads naturally."""
    schedule.validate()
    return schedule.num_steps


def _shared_net_id(topology: Topology, a: int, b: int) -> int | None:
    """Net shared by two nodes (kept for callers of the seed-era helper).

    The engine now uses the topology's own cached/closed-form
    :meth:`~repro.networks.base.HypergraphTopology.shared_net`; this wrapper
    survives so external code keyed to the old name keeps working, and it
    raises :class:`TypeError` (not a strippable ``assert``) on non-hypergraph
    topologies.
    """
    if not isinstance(topology, HypergraphTopology):
        raise TypeError(
            f"net lookup needs a HypergraphTopology, got {type(topology).__name__}"
        )
    return topology.shared_net(a, b)
