"""E4 — Table 2B: FFT execution time after normalization."""

import pytest
from conftest import emit

from repro.hardware import GAAS_1992
from repro.models import table_2b
from repro.viz import format_rows, format_time


def test_table_2b_rows(benchmark):
    rows = benchmark(table_2b, 4096, GAAS_1992)
    printable = [
        dict(r, step_time=format_time(r["step_time"]), comm_time=format_time(r["comm_time"]))
        for r in rows
    ]
    emit(
        "Table 2B (N = 4096)",
        format_rows(
            printable,
            ["network", "dt_steps", "steps_formula", "step_time", "comm_time", "time_formula"],
        ),
    )
    by_net = {r["network"]: r for r in rows}
    assert by_net["2D mesh"]["comm_time"] == pytest.approx(8e-6)
    assert by_net["hypercube"]["comm_time"] == pytest.approx(3.12e-6, rel=1e-2)
    assert by_net["2D hypermesh"]["comm_time"] == pytest.approx(0.3e-6)


def test_table_2b_scales(benchmark):
    """T_comm asymptotics: O(sqrt N), O(log^2 N), O(log N) over KL."""
    import math

    def sweep():
        out = []
        for k in range(2, 7):
            n = 4**k
            rows = {r["network"]: r["comm_time"] for r in table_2b(n, GAAS_1992)}
            out.append((n, rows))
        return out

    data = benchmark(sweep)
    emit(
        "Table 2B sweep: comm time vs N",
        "\n".join(
            f"N={n:6d}: mesh={format_time(r['2D mesh'])} "
            f"cube={format_time(r['hypercube'])} "
            f"hm={format_time(r['2D hypermesh'])}"
            for n, r in data
        ),
    )
    # Shape check: normalized against the asymptotic form, the series must
    # stay within a small constant band.
    mesh_shape = [r["2D mesh"] / math.sqrt(n) for n, r in data]
    hm_shape = [r["2D hypermesh"] / math.log2(n) for n, r in data]
    cube_shape = [r["hypercube"] / math.log2(n) ** 2 for n, r in data]
    for series in (mesh_shape, hm_shape, cube_shape):
        assert max(series) / min(series) < 2.0
