"""Unit tests for the standard permutation families."""

import numpy as np
import pytest

from repro.networks.addressing import bit_reverse
from repro.routing import (
    ascend_schedule,
    bit_permutation,
    bit_reversal,
    butterfly_exchange,
    descend_schedule,
    inverse_shuffle,
    matrix_transpose,
    perfect_shuffle,
    vector_reversal,
)


class TestBitPermutation:
    def test_identity_spec(self):
        p = bit_permutation(8, [0, 1, 2])
        assert p.is_identity()

    def test_complement_only(self):
        p = bit_permutation(8, [0, 1, 2], complement_mask=0b101)
        assert p[0] == 0b101
        assert p[0b101] == 0

    def test_rejects_bad_source(self):
        with pytest.raises(ValueError):
            bit_permutation(8, [0, 0, 2])

    def test_rejects_bad_mask(self):
        with pytest.raises(ValueError):
            bit_permutation(8, [0, 1, 2], complement_mask=8)


class TestBitReversal:
    def test_matches_scalar(self):
        p = bit_reversal(16)
        for i in range(16):
            assert p[i] == bit_reverse(i, 4)

    def test_is_involution(self):
        assert bit_reversal(64).is_involution()

    def test_size_two_is_identity(self):
        assert bit_reversal(2).is_identity()


class TestButterflyExchange:
    @pytest.mark.parametrize("dim", range(4))
    def test_flips_one_bit(self, dim):
        p = butterfly_exchange(16, dim)
        for i in range(16):
            assert p[i] == i ^ (1 << dim)

    def test_is_involution(self):
        assert butterfly_exchange(32, 3).is_involution()

    def test_no_fixed_points(self):
        assert butterfly_exchange(16, 0).fixed_points().size == 0

    def test_rejects_out_of_range_dim(self):
        with pytest.raises(ValueError):
            butterfly_exchange(16, 4)


class TestShuffles:
    def test_perfect_shuffle_doubles_mod(self):
        n = 16
        p = perfect_shuffle(n)
        for i in range(n - 1):
            assert p[i] == (2 * i) % (n - 1)
        assert p[n - 1] == n - 1

    def test_shuffle_inverse_roundtrip(self):
        n = 32
        assert perfect_shuffle(n).compose(inverse_shuffle(n)).is_identity()

    def test_shuffle_order_is_log_n(self):
        # Applying the shuffle log2(n) times returns to identity.
        n = 16
        p = perfect_shuffle(n)
        acc = p
        for _ in range(3):
            acc = acc.compose(p)
        assert acc.is_identity()


class TestVectorReversal:
    def test_reverses(self):
        p = vector_reversal(8)
        for i in range(8):
            assert p[i] == 7 - i

    def test_corner_swap_is_in_it(self):
        # The packets the paper's mesh lower bound tracks.
        n = 16
        p = vector_reversal(n)
        assert p[0] == n - 1 and p[n - 1] == 0


class TestMatrixTranspose:
    def test_square(self):
        p = matrix_transpose(2, 2)
        # (0,1) -> (1,0): index 1 -> index 2.
        assert p[1] == 2 and p[2] == 1 and p[0] == 0 and p[3] == 3

    def test_rectangular_roundtrip(self):
        p = matrix_transpose(3, 4)
        q = matrix_transpose(4, 3)
        assert p.compose(q).is_identity()

    def test_moves_data_like_numpy(self):
        rows, cols = 3, 5
        p = matrix_transpose(rows, cols)
        data = np.arange(rows * cols)
        out = p.apply(data)
        assert np.array_equal(
            out.reshape(cols, rows), data.reshape(rows, cols).T
        )

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            matrix_transpose(0, 3)


class TestSchedules:
    def test_descend_composes_to_identity(self):
        # Each exchange is an involution; composing all gives XOR with
        # (n-1) mask... actually the composition is x ^ (2^w - 1).
        n = 16
        acc = None
        for p in descend_schedule(n):
            acc = p if acc is None else acc.compose(p)
        assert acc is not None
        for i in range(n):
            assert acc[i] == i ^ (n - 1)

    def test_descend_order(self):
        scheds = descend_schedule(16)
        assert [p[0] for p in scheds] == [8, 4, 2, 1]

    def test_ascend_is_reverse_of_descend(self):
        assert ascend_schedule(16) == list(reversed(descend_schedule(16)))

    def test_length_is_log_n(self):
        assert len(descend_schedule(64)) == 6
