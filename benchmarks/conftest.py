"""Benchmark-harness configuration.

Every file in this directory regenerates one table or figure of the paper
(see DESIGN.md's experiment index).  Run with::

    pytest benchmarks/ --benchmark-only -s

The ``-s`` shows the regenerated rows next to the timings; every benchmark
also asserts the reproduced values so the harness doubles as a check.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(2026)


def emit(title: str, body: str) -> None:
    """Print a regenerated artifact under a clear banner."""
    print()
    print(f"---- {title} ----")
    print(body)
