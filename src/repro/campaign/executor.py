"""Multiprocessing campaign executor: worker pool with failure isolation.

The executor runs every task of a :class:`~repro.campaign.spec.CampaignSpec`
in worker *processes* (one task in flight per worker), which buys three
properties an in-process loop cannot give:

* **parallelism** across cores for CPU-bound simulator sweeps;
* **per-task timeouts** — a hung task's worker is killed and replaced, the
  campaign continues;
* **crash isolation** — a task that takes its interpreter down (segfault,
  ``os._exit``) is recorded as ``failed`` with a diagnostic while sibling
  tasks complete.

Failures are data, not exceptions: every task ends as a
:class:`~repro.campaign.metrics.TaskRecord` with ``status`` ``"ok"`` or
``"failed"`` (kind ``exception`` / ``timeout`` / ``crash``), a bounded number
of retries having been attempted first.  When a
:class:`~repro.campaign.store.ResultStore` is attached, records persist as
they complete, so killing a run and re-running with resume executes only the
remaining tasks.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Any, Callable

from .metrics import CampaignSummary, TaskRecord, summarize
from .spec import CampaignSpec, TaskSpec
from .store import ResultStore

__all__ = ["run_campaign", "CampaignResult", "resolve_entry"]

#: Seconds the parent waits on the result queue per scheduling loop turn.
_POLL_SECONDS = 0.02


def resolve_entry(entry: str) -> Callable[[dict], Any]:
    """Import a ``"module.path:function"`` reference and return the callable."""
    module_name, _, func_name = entry.partition(":")
    if not module_name or not func_name:
        raise ValueError(f"entry {entry!r} must be 'module.path:function'")
    module = importlib.import_module(module_name)
    try:
        fn = getattr(module, func_name)
    except AttributeError as exc:
        raise ValueError(f"{module_name!r} has no attribute {func_name!r}") from exc
    if not callable(fn):
        raise ValueError(f"entry {entry!r} is not callable")
    return fn


@dataclass
class CampaignResult:
    """Everything a campaign run produced, in spec order."""

    spec: CampaignSpec
    records: list[TaskRecord]
    summary: CampaignSummary

    @property
    def ok(self) -> bool:
        return self.summary.all_ok

    def payloads(self) -> list[Any]:
        """Payloads of successful tasks, in spec order."""
        return [r.payload for r in self.records if r.ok]


def _worker_main(worker_id: int, inbox, outbox) -> None:
    """Worker loop: one task at a time, everything reported via the queue.

    Catches ``BaseException`` so even ``SystemExit`` from an entry point
    becomes a failure record rather than a silent worker death; only an
    actual process kill (timeout/crash) is handled by the parent.
    """
    while True:
        item = inbox.get()
        if item is None:
            return
        index, attempt, entry, params = item
        t0 = time.perf_counter()
        try:
            fn = resolve_entry(entry)
            payload = fn(dict(params))
            result = (index, attempt, worker_id, "ok", payload, None)
        except BaseException:
            result = (index, attempt, worker_id, "error", None, _traceback.format_exc())
        elapsed = time.perf_counter() - t0
        try:
            outbox.put((*result, elapsed))
        except Exception:
            # Unpicklable payload: report the failure instead of hanging.
            outbox.put(
                (
                    index,
                    attempt,
                    worker_id,
                    "error",
                    None,
                    f"task payload for {entry!r} could not be pickled",
                    elapsed,
                )
            )


@dataclass
class _Worker:
    worker_id: int
    process: mp.process.BaseProcess
    inbox: Any
    busy_index: int | None = None
    started_at: float = 0.0
    deadline: float = field(default=float("inf"))

    @property
    def idle(self) -> bool:
        return self.busy_index is None


class _Pool:
    """Fixed-size process pool with kill-and-respawn semantics."""

    def __init__(self, ctx, outbox, num_workers: int):
        self._ctx = ctx
        self._outbox = outbox
        self._next_id = 0
        self.workers: dict[int, _Worker] = {}
        for _ in range(num_workers):
            self._spawn()

    def _spawn(self) -> _Worker:
        worker_id = self._next_id
        self._next_id += 1
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, inbox, self._outbox),
            daemon=True,
            name=f"campaign-worker-{worker_id}",
        )
        process.start()
        worker = _Worker(worker_id=worker_id, process=process, inbox=inbox)
        self.workers[worker_id] = worker
        return worker

    def kill_and_replace(self, worker: _Worker) -> None:
        """Terminate a hung/dead worker and bring the pool back to size."""
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():  # pragma: no cover - last resort
                worker.process.kill()
                worker.process.join(timeout=5.0)
        worker.inbox.close()
        del self.workers[worker.worker_id]
        self._spawn()

    def idle_workers(self) -> list[_Worker]:
        return [w for w in self.workers.values() if w.idle]

    def shutdown(self) -> None:
        for worker in self.workers.values():
            try:
                worker.inbox.put(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for worker in self.workers.values():
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)


def _make_context():
    """Prefer ``fork`` (cheap on Linux: no re-import of numpy per worker),
    fall back to the platform default elsewhere."""
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else None)


def run_campaign(
    spec: CampaignSpec,
    store: ResultStore | None = None,
    *,
    workers: int = 1,
    task_timeout: float | None = None,
    retries: int = 1,
    reuse: bool = True,
    progress: Callable[[TaskRecord], None] | None = None,
) -> CampaignResult:
    """Execute a campaign and return per-task records plus a summary.

    Parameters
    ----------
    spec:
        The expanded campaign (see :meth:`CampaignSpec.from_grid`).
    store:
        Optional result store.  With a store attached, tasks whose stored
        record is already a success are served as cache hits (``reuse=True``),
        and every newly completed task is persisted immediately — this is
        what makes ``--resume`` after a mid-flight kill execute only the
        remaining tasks.  ``store=None`` runs everything in memory.
    workers:
        Worker processes.  ``workers=1`` still uses a subprocess, so crash
        isolation and timeouts behave identically at any width.
    task_timeout:
        Per-task wall-clock budget in seconds; an over-budget task's worker
        is killed and replaced.  ``None`` disables the deadline.
    retries:
        Extra attempts per task after the first failure (exception, timeout
        or crash) before it is recorded as ``failed``.
    reuse:
        Set ``False`` to ignore stored successes and re-execute every task
        (the CLI's ``--force``).
    progress:
        Optional callback invoked with each completed :class:`TaskRecord`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")

    t_start = time.perf_counter()
    if store is not None:
        store.write_spec(spec)

    records: dict[int, TaskRecord] = {}
    pending: list[tuple[int, TaskSpec]] = []
    for index, task in enumerate(spec.tasks):
        cached = store.load_record(task.task_hash) if (store and reuse) else None
        if cached is not None and cached.ok:
            cached.cache_hit = True
            records[index] = cached
            if progress is not None:
                progress(cached)
        else:
            pending.append((index, task))

    if pending:
        _execute(
            spec,
            pending,
            records,
            store=store,
            workers=min(workers, len(pending)),
            task_timeout=task_timeout,
            retries=retries,
            progress=progress,
        )

    ordered = [records[i] for i in sorted(records)]
    summary = summarize(ordered, wall_seconds=time.perf_counter() - t_start)
    return CampaignResult(spec=spec, records=ordered, summary=summary)


def _execute(
    spec: CampaignSpec,
    pending: list[tuple[int, TaskSpec]],
    records: dict[int, TaskRecord],
    *,
    store: ResultStore | None,
    workers: int,
    task_timeout: float | None,
    retries: int,
    progress: Callable[[TaskRecord], None] | None,
) -> None:
    ctx = _make_context()
    outbox = ctx.Queue()
    pool = _Pool(ctx, outbox, workers)

    queue: list[tuple[int, int]] = [(index, 1) for index, _ in pending]
    queue.reverse()  # pop() then serves tasks in spec order
    tasks = dict(pending)
    in_flight: dict[int, int] = {}  # task index -> attempt number
    done = 0

    def finish(
        index: int,
        attempt: int,
        *,
        status: str,
        failure_kind: str | None,
        payload: Any,
        tb: str | None,
        wall: float,
        worker_id: int | None,
    ) -> None:
        nonlocal done
        task = tasks[index]
        # Tasks that wrote an observability trace advertise it through a
        # "trace_ref" payload key; lift it onto the record so reports can
        # link each task to its trace without parsing payloads.
        trace_ref = payload.get("trace_ref") if isinstance(payload, dict) else None
        record = TaskRecord(
            task_hash=task.task_hash,
            label=task.label,
            entry=task.entry,
            params=dict(task.params),
            status=status,
            failure_kind=failure_kind,
            wall_seconds=wall,
            worker_id=worker_id,
            attempts=attempt,
            payload=payload,
            traceback=tb,
            trace_ref=trace_ref,
        )
        records[index] = record
        done += 1
        if store is not None:
            store.put_record(record)
        if progress is not None:
            progress(record)

    def fail_or_retry(
        worker: _Worker, *, kind: str, tb: str, wall: float
    ) -> None:
        index = worker.busy_index
        assert index is not None
        attempt = in_flight.pop(index)
        worker.busy_index = None
        if attempt <= retries:
            queue.append((index, attempt + 1))
        else:
            finish(
                index,
                attempt,
                status="failed",
                failure_kind=kind,
                payload=None,
                tb=tb,
                wall=wall,
                worker_id=worker.worker_id,
            )

    try:
        while done < len(pending):
            # Dispatch to every idle worker.
            for worker in pool.idle_workers():
                if not queue:
                    break
                index, attempt = queue.pop()
                task = tasks[index]
                worker.busy_index = index
                worker.started_at = time.perf_counter()
                worker.deadline = (
                    worker.started_at + task_timeout
                    if task_timeout is not None
                    else float("inf")
                )
                in_flight[index] = attempt
                worker.inbox.put((index, attempt, task.entry, dict(task.params)))

            # Collect one result if any arrived.
            try:
                index, attempt, worker_id, status, payload, tb, wall = outbox.get(
                    timeout=_POLL_SECONDS
                )
            except Exception:  # queue.Empty
                pass
            else:
                if in_flight.get(index) != attempt:
                    # Stale result from an attempt the deadline sweep already
                    # resolved (killed + requeued/failed): drop it.
                    continue
                worker = pool.workers.get(worker_id)
                if worker is not None and worker.busy_index == index:
                    worker.busy_index = None
                del in_flight[index]
                if status == "ok":
                    finish(
                        index,
                        attempt,
                        status="ok",
                        failure_kind=None,
                        payload=payload,
                        tb=None,
                        wall=wall,
                        worker_id=worker_id,
                    )
                elif attempt <= retries:
                    queue.append((index, attempt + 1))
                else:
                    finish(
                        index,
                        attempt,
                        status="failed",
                        failure_kind="exception",
                        payload=None,
                        tb=tb,
                        wall=wall,
                        worker_id=worker_id,
                    )
                continue

            # Enforce deadlines and detect crashed workers.
            now = time.perf_counter()
            for worker in list(pool.workers.values()):
                if worker.idle:
                    continue
                if now > worker.deadline:
                    task = tasks[worker.busy_index]
                    fail_or_retry(
                        worker,
                        kind="timeout",
                        tb=(
                            f"task {task.label!r} exceeded its "
                            f"{task_timeout:g}s timeout and was killed"
                        ),
                        wall=now - worker.started_at,
                    )
                    pool.kill_and_replace(worker)
                elif not worker.process.is_alive():
                    task = tasks[worker.busy_index]
                    fail_or_retry(
                        worker,
                        kind="crash",
                        tb=(
                            f"worker {worker.worker_id} running task "
                            f"{task.label!r} exited with code "
                            f"{worker.process.exitcode}"
                        ),
                        wall=now - worker.started_at,
                    )
                    pool.kill_and_replace(worker)
    finally:
        pool.shutdown()
