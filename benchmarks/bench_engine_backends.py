"""Per-backend routing-engine scaling — the BENCH_engine.json recorder.

Every engine backend (``indexed``, ``numpy``, plus ``numba`` and ``cupy``
when the optional packages are usable) routes identical fixed-seed
workloads on meshes, hypercubes and hypermeshes, timed against the frozen
seed loop in
:mod:`repro.sim._reference`.  Each emitted row carries ``equivalent:
true`` only after the row's schedule and :class:`RoutingStats` have been
checked bit-identical to the seed loop *and* the row's
:class:`CachedPlan` payload — the exact JSON body a plan-cache blob
stores, insertion order included — matches the reference's byte for
byte.  That is the cross-backend cache guarantee, re-proven at benchmark
scale on every run that records the artifact.

The module is importable (``import bench_engine_backends``) and doubles
as a script::

    python benchmarks/bench_engine_backends.py --sizes 256 1024

It deliberately defines no ``test_`` functions:
``bench_library_perf.py::test_perf_engine_scaling`` is the pytest entry
point and delegates here, so the sweep runs once per session.
"""

import json
import math
import time
from pathlib import Path

import numpy as np

#: Same seeding convention as bench_library_perf / repro.sim.task: each
#: size derives its workload generator from ``WORKLOAD_SEED + n`` so the
#: benchmark routes the exact packets the campaign sweep routes.
WORKLOAD_SEED = 99

ENGINE_ARTIFACT = Path(__file__).resolve().parents[1] / "BENCH_engine.json"
ENGINE_SIZES = (256, 1024, 4096, 16384)

#: Acceptance bars, enforced whenever the sweep includes N = 4096: the
#: indexed rebuild keeps its >= 5x, the SoA numpy core must clear >= 10x
#: over the seed loop on at least one (topology, workload) cell.
SPEEDUP_FLOORS = {"indexed": 5.0, "numpy": 10.0}

from repro.bounds import certify
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.routing import Permutation
from repro.sim._reference import reference_route_core
from repro.sim.backends import (
    available_backends,
    cupy_available,
    resolve_backend,
)
from repro.sim.plancache import CachedPlan
from repro.sim.routers import router_for


def _engine_topologies(n: int):
    side = math.isqrt(n)
    return (
        ("mesh2d", Mesh2D(side)),
        ("hypercube", Hypercube(n.bit_length() - 1)),
        ("hypermesh2d", Hypermesh2D(side)),
    )


def _engine_workloads(n: int, seed: int):
    """Fixed-seed workloads: a dense permutation (every PE sends) and a
    sparse h-relation (2*sqrt(N) packets — where the seed loop's O(N)
    per-step rescan is pure overhead)."""
    rng = np.random.default_rng(seed)
    perm = Permutation.random(n, rng)
    dense = (list(range(n)), perm.destinations.tolist())
    k = 2 * math.isqrt(n)
    sparse = (
        rng.integers(0, n, size=k).tolist(),
        rng.integers(0, n, size=k).tolist(),
    )
    return (("dense-permutation", dense), ("sparse-hrelation", sparse))


def _plan_blob(steps, stats) -> str:
    """The canonical JSON body a plan-cache blob would store for this
    run.  Comparing these strings across backends checks not just dict
    equality but the serialized insertion order — what actually lands on
    disk."""
    return json.dumps(
        CachedPlan.from_run(steps, stats).to_payload(), sort_keys=True
    )


def _gpu_crossover(sizes, rows) -> dict:
    """Per-size CPU/GPU crossover rows for the best-effort ``cupy``
    backend, in the style of the wafer-scale comparison: one row per N
    comparing the fastest CPU core against the GPU kernel on the dense
    mesh permutation.  When no CUDA device is visible the section records
    ``gpu_available: false`` and null GPU timings — never a guessed or
    stale number.
    """
    gpu = cupy_available()
    crossover_rows = []
    for n in sizes:
        cpu_cells = [
            r for r in rows
            if r["n"] == n and r["topology"] == "mesh2d"
            and r["workload"] == "dense-permutation"
            and r["backend"] in ("indexed", "numpy")
        ]
        if not cpu_cells:
            continue
        best_cpu = min(cpu_cells, key=lambda r: r["engine_seconds"])
        row = {
            "n": n,
            "topology": "mesh2d",
            "workload": "dense-permutation",
            "gpu_available": gpu,
            "cpu_backend": best_cpu["backend"],
            "cpu_seconds": best_cpu["engine_seconds"],
            "gpu_seconds": None,
            "gpu_speedup_vs_cpu": None,
        }
        if gpu:  # pragma: no cover - needs a CUDA device
            gpu_cell = next(
                (
                    r for r in rows
                    if r["n"] == n and r["topology"] == "mesh2d"
                    and r["workload"] == "dense-permutation"
                    and r["backend"] == "cupy"
                ),
                None,
            )
            if gpu_cell is not None:
                row["gpu_seconds"] = gpu_cell["engine_seconds"]
                row["gpu_speedup_vs_cpu"] = round(
                    best_cpu["engine_seconds"] / gpu_cell["engine_seconds"],
                    2,
                )
        crossover_rows.append(row)
    return {
        "gpu_available": gpu,
        "note": (
            "cupy is a best-effort backend: timed only when the package "
            "imports and a CUDA device is visible; fault-free runs only"
        ),
        "rows": crossover_rows,
    }


def run_engine_benchmark(
    sizes=ENGINE_SIZES,
    out_path: Path = ENGINE_ARTIFACT,
    backends=None,
    require_speedups: bool = True,
) -> dict:
    """Time every backend against the seed loop and record the artifact.

    Each (size, topology, workload) cell routes the same packets through
    the seed reference once per repeat and through every backend,
    interleaved so clock-frequency drift during the sweep cannot bias
    one side of a pair.  Equivalence (schedule, stats, and serialized
    plan payload) is asserted per row before the row is emitted.
    """
    backends = list(backends if backends is not None else available_backends())
    cores = {name: resolve_backend(name) for name in backends}
    rows = []
    for n in sizes:
        for topo_name, topo in _engine_topologies(n):
            router = router_for(topo)
            for workload, (srcs, dsts) in _engine_workloads(
                n, seed=WORKLOAD_SEED + n
            ):
                max_steps = 16 * (10 * topo.diameter + 10 * n)
                repeats = 5 if n <= 1024 else 1
                seed_s = math.inf
                times = dict.fromkeys(backends, math.inf)
                outputs = {}
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    ref_steps, ref_stats = reference_route_core(
                        topo, srcs, dsts, router, max_steps
                    )
                    seed_s = min(seed_s, time.perf_counter() - t0)
                    for name in backends:
                        t0 = time.perf_counter()
                        outputs[name] = cores[name](
                            topo, srcs, dsts, router, max_steps
                        )
                        times[name] = min(times[name], time.perf_counter() - t0)
                ref_blob = _plan_blob(ref_steps, ref_stats)
                # One certificate per cell: every backend reports the same
                # (bit-identical) step count, so certify the reference once
                # and stamp each row.  A BoundViolation here is a failed
                # benchmark run, never a recorded row.
                cert = certify(
                    topo,
                    list(zip(srcs, dsts)),
                    ref_stats.steps,
                    label=f"{topo_name}/{workload}/n={n}",
                )
                for name in backends:
                    steps, stats = outputs[name]
                    assert steps == ref_steps and stats == ref_stats, (
                        f"{name} diverged from seed loop on "
                        f"{topo_name} n={n} {workload}"
                    )
                    assert _plan_blob(steps, stats) == ref_blob, (
                        f"{name} plan payload differs on "
                        f"{topo_name} n={n} {workload}"
                    )
                    rows.append(
                        {
                            "topology": topo_name,
                            "n": n,
                            "workload": workload,
                            "backend": name,
                            "packets": len(srcs),
                            "steps": stats.steps,
                            "total_hops": stats.total_hops,
                            "engine_seconds": round(times[name], 6),
                            "seed_engine_seconds": round(seed_s, 6),
                            "speedup": round(seed_s / times[name], 2),
                            "equivalent": True,
                            "bound": cert.bound,
                            "bound_ratio": round(cert.ratio, 2)
                            if cert.ratio is not None else None,
                            "bound_kind": cert.binding,
                            "certified": True,
                        }
                    )

    artifact = {
        "benchmark": "bench_engine_backends.py::run_engine_benchmark",
        "engines": {
            name: f"repro.sim backend {name!r}" for name in backends
        },
        "baseline": "repro.sim._reference.reference_route_core (seed loop)",
        "equivalence": (
            "per row: schedule, RoutingStats and serialized CachedPlan "
            "payload bit-identical to the seed loop (equivalent: true)"
        ),
        "sizes": list(sizes),
        "backends": backends,
        "rows": rows,
        "gpu_crossover": _gpu_crossover(sizes, rows),
    }
    if 4096 in sizes:
        best = {}
        for name in backends:
            cell = max(
                (r for r in rows if r["n"] == 4096 and r["backend"] == name),
                key=lambda r: r["speedup"],
            )
            best[name] = {
                "topology": cell["topology"],
                "workload": cell["workload"],
                "speedup": cell["speedup"],
            }
        artifact["best_speedup_at_4096"] = best
        if require_speedups:
            for name, floor in SPEEDUP_FLOORS.items():
                if name in best:
                    assert best[name]["speedup"] >= floor, (
                        f"backend {name!r} below its {floor}x floor at "
                        f"N=4096: best {best[name]}"
                    )
    if out_path is not None:
        out_path.write_text(json.dumps(artifact, indent=2) + "\n")
    return artifact


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="record BENCH_engine.json across engine backends"
    )
    parser.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=list(ENGINE_SIZES),
        help="node counts to sweep (square powers of two)",
    )
    parser.add_argument(
        "--backends",
        nargs="+",
        default=None,
        help="backends to time (default: every available backend)",
    )
    parser.add_argument("--output", type=Path, default=ENGINE_ARTIFACT)
    parser.add_argument(
        "--no-floors",
        action="store_true",
        help="record timings without enforcing the 4096 speedup floors "
        "(smoke runs on loaded CI hosts)",
    )
    args = parser.parse_args(argv)

    artifact = run_engine_benchmark(
        sizes=tuple(args.sizes),
        out_path=args.output,
        backends=args.backends,
        require_speedups=not args.no_floors,
    )
    print(f"wrote {args.output} ({len(artifact['rows'])} rows)")
    for name, cell in artifact.get("best_speedup_at_4096", {}).items():
        print(
            f"  {name}: best {cell['speedup']}x at N=4096 "
            f"({cell['topology']}, {cell['workload']})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
