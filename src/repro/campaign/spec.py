"""Declarative campaign specifications with content-addressed task identity.

A :class:`TaskSpec` names a picklable entry point (``"package.module:function"``)
plus a JSON dictionary of parameters; its :attr:`~TaskSpec.task_hash` is a
deterministic digest of exactly that pair, so the same configuration always
maps to the same on-disk result blob and re-running a campaign can skip work
that is already done.  A :class:`CampaignSpec` is an ordered collection of
tasks, usually produced by :meth:`CampaignSpec.from_grid` — the cartesian
product of a parameter grid (topology x size x workload x policy), which is
how the paper's own evaluations are organized.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["TaskSpec", "CampaignSpec", "canonical_json"]

#: Hex digits kept from the SHA-256 digest; 16 (64 bits) keeps collision
#: odds negligible at any realistic campaign size while staying readable.
_HASH_CHARS = 16


def canonical_json(value: Any) -> str:
    """Serialize ``value`` deterministically (sorted keys, no whitespace).

    Raises ``TypeError`` if ``value`` is not JSON-serializable — task
    parameters must survive a JSON round trip so hashes and stored blobs
    agree.
    """
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TaskSpec:
    """One unit of campaign work: an entry point and its parameters.

    ``entry`` is a dotted-path reference ``"module.sub:function"``; the
    function is imported inside the worker process, receives ``params`` as a
    plain ``dict``, and must return a JSON-serializable payload.
    """

    entry: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def __post_init__(self) -> None:
        if ":" not in self.entry:
            raise ValueError(
                f"entry {self.entry!r} must be 'module.path:function'"
            )
        # Freeze the parameters (and verify JSON-serializability) up front so
        # the hash can never drift from what the store records.
        canonical_json(dict(self.params))
        if not self.label:
            object.__setattr__(self, "label", self.default_label())

    def default_label(self) -> str:
        parts = [f"{k}={self.params[k]}" for k in self.params]
        return ",".join(parts) if parts else self.entry.rsplit(":", 1)[-1]

    @property
    def task_hash(self) -> str:
        """Deterministic content hash of ``(entry, params)`` — the task's
        identity in the result store.  Labels are cosmetic and excluded."""
        blob = canonical_json({"entry": self.entry, "params": dict(self.params)})
        return hashlib.sha256(blob.encode()).hexdigest()[:_HASH_CHARS]

    def to_dict(self) -> dict:
        return {
            "entry": self.entry,
            "params": dict(self.params),
            "label": self.label,
            "task_hash": self.task_hash,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TaskSpec":
        return cls(
            entry=data["entry"],
            params=dict(data.get("params", {})),
            label=data.get("label", ""),
        )


@dataclass(frozen=True)
class CampaignSpec:
    """An ordered, duplicate-free collection of tasks under one name."""

    name: str
    tasks: tuple[TaskSpec, ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))
        seen: dict[str, TaskSpec] = {}
        for task in self.tasks:
            prior = seen.get(task.task_hash)
            if prior is not None:
                raise ValueError(
                    f"duplicate task in campaign {self.name!r}: "
                    f"{task.label!r} collides with {prior.label!r}"
                )
            seen[task.task_hash] = task

    def __len__(self) -> int:
        return len(self.tasks)

    @property
    def spec_hash(self) -> str:
        blob = canonical_json(
            {"name": self.name, "tasks": [t.task_hash for t in self.tasks]}
        )
        return hashlib.sha256(blob.encode()).hexdigest()[:_HASH_CHARS]

    @classmethod
    def from_grid(
        cls,
        name: str,
        entry: str,
        grid: Mapping[str, Sequence[Any]],
        *,
        base: Mapping[str, Any] | None = None,
        meta: Mapping[str, Any] | None = None,
    ) -> "CampaignSpec":
        """Expand the cartesian product of ``grid`` into one task per cell.

        ``base`` supplies parameters shared by every task (seeds, policies);
        grid keys override base keys.  Axis order follows the mapping's
        insertion order, so task order is deterministic.
        """
        base = dict(base or {})
        keys = list(grid)
        tasks = []
        for combo in itertools.product(*(grid[k] for k in keys)):
            params = dict(base)
            params.update(zip(keys, combo))
            label = ",".join(f"{k}={v}" for k, v in zip(keys, combo))
            tasks.append(TaskSpec(entry=entry, params=params, label=label))
        return cls(name=name, tasks=tuple(tasks), meta=dict(meta or {}))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "spec_hash": self.spec_hash,
            "meta": dict(self.meta),
            "tasks": [t.to_dict() for t in self.tasks],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        return cls(
            name=data["name"],
            tasks=tuple(TaskSpec.from_dict(t) for t in data["tasks"]),
            meta=dict(data.get("meta", {})),
        )

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CampaignSpec":
        return cls.from_dict(json.loads(Path(path).read_text()))
