"""TaskSpec / CampaignSpec: grid expansion, hashing, (de)serialization."""

import json

import pytest

from repro.campaign import CampaignSpec, TaskSpec


class TestTaskSpec:
    def test_hash_is_deterministic(self):
        a = TaskSpec("m.x:f", {"n": 64, "topology": "mesh2d"})
        b = TaskSpec("m.x:f", {"topology": "mesh2d", "n": 64})
        assert a.task_hash == b.task_hash  # key order is irrelevant

    def test_hash_changes_with_params(self):
        a = TaskSpec("m.x:f", {"n": 64})
        b = TaskSpec("m.x:f", {"n": 128})
        c = TaskSpec("m.y:f", {"n": 64})
        assert len({a.task_hash, b.task_hash, c.task_hash}) == 3

    def test_label_excluded_from_hash(self):
        a = TaskSpec("m.x:f", {"n": 64}, label="one")
        b = TaskSpec("m.x:f", {"n": 64}, label="two")
        assert a.task_hash == b.task_hash

    def test_default_label(self):
        assert TaskSpec("m.x:f", {"n": 64, "w": "p"}).label == "n=64,w=p"
        assert TaskSpec("m.x:f").label == "f"

    def test_entry_must_be_dotted_ref(self):
        with pytest.raises(ValueError, match="module.path:function"):
            TaskSpec("not-a-ref", {})

    def test_params_must_be_json(self):
        with pytest.raises(TypeError):
            TaskSpec("m.x:f", {"bad": object()})

    def test_roundtrip(self):
        task = TaskSpec("m.x:f", {"n": 64}, label="cell")
        again = TaskSpec.from_dict(json.loads(json.dumps(task.to_dict())))
        assert again == task and again.task_hash == task.task_hash


class TestCampaignSpec:
    def test_from_grid_expands_cartesian_product(self):
        spec = CampaignSpec.from_grid(
            "g", "m.x:f", {"a": [1, 2], "b": ["x", "y", "z"]}, base={"seed": 9}
        )
        assert len(spec) == 6
        assert [t.params["a"] for t in spec.tasks] == [1, 1, 1, 2, 2, 2]
        assert all(t.params["seed"] == 9 for t in spec.tasks)
        assert spec.tasks[0].label == "a=1,b=x"

    def test_grid_overrides_base(self):
        spec = CampaignSpec.from_grid("g", "m.x:f", {"n": [1]}, base={"n": 0})
        assert spec.tasks[0].params["n"] == 1

    def test_duplicate_tasks_rejected(self):
        task = TaskSpec("m.x:f", {"n": 64})
        with pytest.raises(ValueError, match="duplicate task"):
            CampaignSpec("dup", (task, TaskSpec("m.x:f", {"n": 64}, label="2")))

    def test_spec_hash_tracks_task_set(self):
        one = CampaignSpec.from_grid("g", "m.x:f", {"n": [1, 2]})
        two = CampaignSpec.from_grid("g", "m.x:f", {"n": [1, 3]})
        assert one.spec_hash != two.spec_hash

    def test_save_load_roundtrip(self, tmp_path):
        spec = CampaignSpec.from_grid(
            "g", "m.x:f", {"n": [1, 2]}, meta={"description": "demo"}
        )
        path = spec.save(tmp_path / "spec.json")
        again = CampaignSpec.load(path)
        assert again == spec and again.spec_hash == spec.spec_hash


class TestBuiltins:
    def test_engine_sweep_grid_shape(self):
        from repro.campaign import builtin_campaign

        spec = builtin_campaign("engine-sweep")
        # 3 topologies x 4 sizes x 3 workloads x 2 backends
        assert len(spec) == 72
        assert all(
            t.entry == "repro.sim.task:run_routing_task" for t in spec.tasks
        )
        assert {t.params["backend"] for t in spec.tasks} == {
            "indexed",
            "numpy",
        }

    def test_unknown_builtin(self):
        from repro.campaign import builtin_campaign

        with pytest.raises(KeyError, match="engine-sweep"):
            builtin_campaign("nope")

    def test_listing_names_all(self):
        from repro.campaign import BUILTIN_CAMPAIGNS, list_builtin_campaigns

        assert [n for n, _ in list_builtin_campaigns()] == list(BUILTIN_CAMPAIGNS)
