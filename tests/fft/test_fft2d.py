"""Unit tests for the parallel 2D FFT (row-column decomposition)."""

import numpy as np
import pytest

from repro.fft.fft2d import parallel_fft_2d
from repro.networks import Hypercube, Hypermesh2D, Mesh2D, Torus2D


TOPOLOGIES_16 = [Mesh2D(4), Torus2D(4), Hypercube(4), Hypermesh2D(4)]


class TestCorrectness:
    @pytest.mark.parametrize("topo", TOPOLOGIES_16, ids=lambda t: type(t).__name__)
    def test_matches_numpy_fft2(self, topo, rng):
        img = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        result = parallel_fft_2d(topo, img, validate=True)
        assert np.allclose(result.spectrum, np.fft.fft2(img))

    def test_larger_instance(self, rng):
        img = rng.normal(size=(8, 8))
        for topo in (Hypermesh2D(8), Hypercube(6)):
            result = parallel_fft_2d(topo, img)
            assert np.allclose(result.spectrum, np.fft.fft2(img))

    def test_dc_image(self):
        img = np.ones((4, 4))
        result = parallel_fft_2d(Hypermesh2D(4), img)
        expected = np.zeros((4, 4), dtype=complex)
        expected[0, 0] = 16.0
        assert np.allclose(result.spectrum, expected)

    def test_separable_tone(self, rng):
        # A pure 2D tone concentrates in one bin.
        s = 8
        r, c = np.meshgrid(np.arange(s), np.arange(s), indexing="ij")
        img = np.exp(2j * np.pi * (2 * r + 3 * c) / s)
        result = parallel_fft_2d(Hypercube(6), img)
        mag = np.abs(result.spectrum)
        assert mag[2, 3] == pytest.approx(s * s)
        mag[2, 3] = 0.0
        assert mag.max() < 1e-9


class TestCost:
    def test_hypermesh_log_n_plus_8(self):
        result = parallel_fft_2d(Hypermesh2D(8), np.zeros((8, 8)))
        assert result.data_transfer_steps == 6 + 8  # log N + 8

    def test_hypermesh_cheaper_than_hypercube_than_mesh(self):
        steps = {
            type(t).__name__: parallel_fft_2d(t, np.zeros((8, 8))).data_transfer_steps
            for t in (Mesh2D(8), Hypercube(6), Hypermesh2D(8))
        }
        assert steps["Hypermesh2D"] < steps["Hypercube"] < steps["Mesh2D"]

    def test_compute_steps_are_2_log_side(self):
        result = parallel_fft_2d(Hypercube(4), np.zeros((4, 4)))
        assert result.computation_steps == 2 * 2


class TestValidation:
    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            parallel_fft_2d(Hypercube(3), np.zeros((2, 4)))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            parallel_fft_2d(Hypercube(4), np.zeros((8, 8)))

    def test_non_power_side_rejected(self):
        with pytest.raises(ValueError):
            parallel_fft_2d(Hypermesh2D(3), np.zeros((3, 3)))
