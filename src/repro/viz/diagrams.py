"""ASCII renderings of the paper's figures.

The paper's three figures are structural diagrams, not data plots:

* Fig. 1 — a 2D hypermesh (bold lines = hypergraph nets);
* Fig. 2 — a PE-node of a hypermesh-based SIMD machine (PE + one port per
  dimension, no intermediate n x n crossbar);
* Fig. 3 — the Cooley–Tukey FFT data-flow graph (butterfly + bit reversal).

These renderers regenerate them as text so the figure benchmarks have a
concrete artifact, and double as debugging aids for the topologies.
"""

from __future__ import annotations

from ..fft.butterfly import ButterflyFlowGraph, butterfly_flow_graph
from ..networks.addressing import bit_reverse, ilog2
from ..networks.hypermesh import Hypermesh2D
from ..networks.mesh import Mesh2D

__all__ = [
    "render_hypermesh_2d",
    "render_mesh_2d",
    "render_pe_node",
    "render_butterfly_graph",
]


def render_hypermesh_2d(side: int) -> str:
    """Fig. 1: a ``side x side`` hypermesh; ``===``/``|`` are hypergraph nets.

    Every horizontal bold run is one *row net* (a crossbar joining all nodes
    of the row); every vertical run is one *column net*.  Unlike mesh links,
    a net touches all its members at once.
    """
    hm = Hypermesh2D(side)
    width = len(str(hm.num_nodes - 1))
    lines = [f"2D hypermesh, side={side} ({hm.num_nodes} PEs, {hm.num_nets()} nets)"]
    for r in range(side):
        cells = [f"[{r * side + c:>{width}}]" for c in range(side)]
        lines.append("===".join(cells) + "   <- row net")
        if r < side - 1:
            bar = (" " * (width // 2 + 1) + "|" + " " * (width - width // 2 + 1)) * side
            lines.append(bar.rstrip())
    lines.append(" " * 1 + "^ column nets join every cell of a column")
    return "\n".join(lines)


def render_mesh_2d(side: int) -> str:
    """The 2D mesh for contrast: ``---``/``|`` are point-to-point links."""
    mesh = Mesh2D(side)
    width = len(str(mesh.num_nodes - 1))
    lines = [f"2D mesh, side={side} ({mesh.num_nodes} PEs, {mesh.num_links()} links)"]
    for r in range(side):
        cells = [f"[{r * side + c:>{width}}]" for c in range(side)]
        lines.append("---".join(cells))
        if r < side - 1:
            bar = (" " * (width // 2 + 1) + "|" + " " * (width - width // 2 + 1)) * side
            lines.append(bar.rstrip())
    return "\n".join(lines)


def render_pe_node(dims: int = 2) -> str:
    """Fig. 2: a hypermesh PE-node — PE plus one net port per dimension.

    The Section II construction: the small n x n crossbar of the original
    proposal is eliminated (SIMD machines switch dimensions globally), so
    each node is just the PE wired straight to its ``dims`` net transceivers.
    """
    if dims < 1:
        raise ValueError("a PE-node needs at least one dimension")
    lines = [
        f"PE-node of a {dims}D hypermesh SIMD machine",
        "",
        "        +----------+",
        "        |    PE    |",
        "        +----------+",
    ]
    for d in range(dims):
        lines.append("          |")
        lines.append(f"   [port dim {d}] ====== net {d} (crossbar, all nodes of dim {d})")
    lines.append("")
    lines.append("(no n x n crossbar between PE and ports: Section II)")
    return "\n".join(lines)


def render_butterfly_graph(num_points: int) -> str:
    """Fig. 3: the FFT data-flow graph, one column per rank.

    Each row is one data index; ``o`` marks a butterfly vertex, the listed
    partner is the cross edge of that stage, and the final column shows the
    bit-reversal wiring.
    """
    graph: ButterflyFlowGraph = butterfly_flow_graph(num_points)
    width = ilog2(num_points)
    idx_w = len(str(num_points - 1))
    header = ["idx".rjust(idx_w)] + [
        f"stage {s} (bit {width - 1 - s})" for s in range(width)
    ] + ["bit-reversal"]
    lines = [
        f"Cooley-Tukey FFT data-flow graph, N={num_points}",
        " | ".join(header),
    ]
    for i in range(num_points):
        cells = [str(i).rjust(idx_w)]
        for s in range(width):
            partner = i ^ (1 << (width - 1 - s))
            cells.append(f"o--x{partner:<{idx_w}}".ljust(len(header[s + 1])))
        cells.append(f"-> {bit_reverse(i, width)}")
        lines.append(" | ".join(cells))
    return "\n".join(lines)
