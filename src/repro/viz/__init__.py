"""Text renderings: the paper's figures (ASCII) and table/series formatting."""

from .diagrams import (
    render_butterfly_graph,
    render_hypermesh_2d,
    render_mesh_2d,
    render_pe_node,
)
from .multistage import render_benes, render_omega
from .series import ascii_chart, format_bandwidth, format_rows, format_table, format_time

__all__ = [
    "render_hypermesh_2d",
    "render_mesh_2d",
    "render_pe_node",
    "render_butterfly_graph",
    "render_omega",
    "render_benes",
    "format_table",
    "format_rows",
    "ascii_chart",
    "format_time",
    "format_bandwidth",
]
