"""Routing jobs: request validation in the event loop, execution off it.

A ``POST /v1/route`` body is validated into a :class:`RouteRequest` with
*named-field* errors (:class:`ValidationError` carries a ``{field:
message}`` mapping, which the service renders as the HTTP 400 body — the
same convention as the CLI's ``error:``-on-stderr contract, but
machine-readable).  Validation is cheap and synchronous; the heavy
word-level arbitration run happens in :func:`execute_route`, a
module-level (hence picklable) function the worker pool executes in a
separate process with the plan cache's on-disk tier as the hand-off
medium: the worker records the blob, the event loop's shared warm LRU
tier replays it for every later identical request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

__all__ = [
    "ValidationError",
    "RouteRequest",
    "execute_route",
]


class ValidationError(Exception):
    """Invalid request body; ``fields`` maps field name to what's wrong."""

    def __init__(self, fields: Mapping[str, str]):
        super().__init__("; ".join(f"{k}: {v}" for k, v in sorted(fields.items())))
        self.fields = dict(fields)


def _int_field(body: Mapping, name: str, errors: dict, *, default=None,
               minimum: int | None = None):
    value = body.get(name, default)
    if value is default and default is None and name not in body:
        return default
    if isinstance(value, bool) or not isinstance(value, int):
        errors[name] = f"expected an integer, got {value!r}"
        return default
    if minimum is not None and value < minimum:
        errors[name] = f"must be >= {minimum}, got {value}"
        return default
    return value


@dataclass(frozen=True)
class RouteRequest:
    """One validated routing job.

    Demands come either from a named seeded workload (``workload`` +
    ``seed``, the benchmark convention) or as an explicit ``demands`` list
    of ``[source, dest]`` pairs; exactly one of the two spellings.
    """

    topology: str
    n: int
    workload: str | None = None
    seed: int = 99
    demands: tuple[tuple[int, int], ...] | None = None
    router: str = "auto"
    arbitration: str = "overtaking"
    backend: str = "indexed"
    fault: dict | None = None
    timeout: float | None = None

    _KNOWN_FIELDS = frozenset(
        {
            "topology",
            "n",
            "workload",
            "seed",
            "demands",
            "router",
            "arbitration",
            "backend",
            "fault",
            "timeout",
        }
    )

    @classmethod
    def from_body(cls, body: Mapping) -> "RouteRequest":
        """Validate a JSON body; :class:`ValidationError` names every
        offending field at once (clients fix one round trip, not N)."""
        from ..sim.backends import ENGINE_BACKENDS
        from ..sim.engine import ARBITRATION_POLICIES
        from ..sim.task import TOPOLOGY_BUILDERS, WORKLOAD_BUILDERS

        errors: dict[str, str] = {}
        for name in body:
            if name not in cls._KNOWN_FIELDS:
                errors[name] = "unknown field"

        topology = body.get("topology")
        if not isinstance(topology, str):
            errors["topology"] = f"required, one of {sorted(TOPOLOGY_BUILDERS)}"
            topology = ""
        elif topology not in TOPOLOGY_BUILDERS:
            errors["topology"] = (
                f"unknown topology {topology!r}; known: {sorted(TOPOLOGY_BUILDERS)}"
            )

        n = _int_field(body, "n", errors, minimum=1)
        if n is None and "n" not in errors:
            errors["n"] = "required, a positive node count"
        if topology in TOPOLOGY_BUILDERS and isinstance(n, int) and n >= 1:
            try:  # family-specific shape rules (square, power of two, ...)
                TOPOLOGY_BUILDERS[topology](n)
            except ValueError as exc:
                errors["n"] = str(exc)

        workload = body.get("workload")
        demands = body.get("demands")
        if workload is None and demands is None:
            errors["workload"] = (
                f"one of 'workload' or 'demands' is required; workloads: "
                f"{sorted(WORKLOAD_BUILDERS)}"
            )
        if workload is not None and demands is not None:
            errors["demands"] = "give either 'workload' or 'demands', not both"
        if workload is not None and workload not in WORKLOAD_BUILDERS:
            errors["workload"] = (
                f"unknown workload {workload!r}; known: {sorted(WORKLOAD_BUILDERS)}"
            )

        parsed_demands = None
        if demands is not None and "demands" not in errors:
            parsed_demands = _parse_demands(demands, n, errors)

        seed = _int_field(body, "seed", errors, default=99)

        router = body.get("router", "auto")
        if router != "auto":
            errors["router"] = (
                f"only 'auto' (the topology's canonical router) is servable; "
                f"got {router!r}"
            )

        arbitration = body.get("arbitration", "overtaking")
        if arbitration not in ARBITRATION_POLICIES:
            errors["arbitration"] = (
                f"unknown policy {arbitration!r}; known: {ARBITRATION_POLICIES}"
            )

        backend = body.get("backend", "indexed")
        if backend not in ENGINE_BACKENDS:
            errors["backend"] = (
                f"unknown backend {backend!r}; known: {tuple(ENGINE_BACKENDS)}"
            )

        fault = body.get("fault")
        if fault is not None:
            if not isinstance(fault, dict):
                errors["fault"] = "expected a FaultModel.to_params() mapping"
            else:
                from ..faults import FaultModel

                try:
                    FaultModel.from_params(fault)
                except (ValueError, TypeError, KeyError) as exc:
                    errors["fault"] = str(exc)

        timeout = body.get("timeout")
        if timeout is not None:
            if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
                errors["timeout"] = f"expected seconds as a number, got {timeout!r}"
            elif timeout <= 0:
                errors["timeout"] = f"must be > 0 seconds, got {timeout}"

        if errors:
            raise ValidationError(errors)
        return cls(
            topology=topology,
            n=int(n),
            workload=workload,
            seed=int(seed),
            demands=parsed_demands,
            router="auto",
            arbitration=arbitration,
            backend=backend,
            fault=dict(fault) if fault else None,
            timeout=float(timeout) if timeout is not None else None,
        )

    # ------------------------------------------------------------ plumbing
    def endpoints(self) -> tuple[list[int], list[int]]:
        """The job's ``(sources, dests)`` lists (builds seeded workloads)."""
        from ..sim.task import build_workload

        if self.demands is not None:
            return [s for s, _ in self.demands], [d for _, d in self.demands]
        return build_workload(self.workload, self.n, self.seed)

    def plan_key(self):
        """The job's :class:`~repro.sim.plancache.PlanKey` (never ``None``:
        only canonical routers are servable, and all are registered)."""
        from ..sim.plancache import plan_key
        from ..sim.routers import router_for
        from ..sim.task import build_topology

        topology = build_topology(self.topology, self.n)
        sources, dests = self.endpoints()
        fault_model = self._fault_model()
        return plan_key(
            topology, sources, dests, router_for(topology),
            self.arbitration, fault_model,
        )

    def _fault_model(self):
        if not self.fault:
            return None
        from ..faults import FaultModel

        return FaultModel.from_params(self.fault)

    def to_params(self, plan_root: str | None) -> dict:
        """The picklable :func:`execute_route` parameter dict."""
        return {
            "topology": self.topology,
            "n": self.n,
            "workload": self.workload,
            "seed": self.seed,
            "demands": [list(pair) for pair in self.demands]
            if self.demands is not None
            else None,
            "arbitration": self.arbitration,
            "backend": self.backend,
            "fault": self.fault,
            "plan_root": plan_root,
        }


def _parse_demands(demands, n, errors: dict):
    if not isinstance(demands, list) or not demands:
        errors["demands"] = "expected a non-empty list of [source, dest] pairs"
        return None
    pairs = []
    limit = n if isinstance(n, int) else None
    for i, pair in enumerate(demands):
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or any(isinstance(x, bool) or not isinstance(x, int) for x in pair)
        ):
            errors["demands"] = f"entry {i} is not an [int, int] pair: {pair!r}"
            return None
        src, dst = pair
        if limit is not None and not (0 <= src < limit and 0 <= dst < limit):
            errors["demands"] = (
                f"entry {i} endpoints out of range for n={limit}: {pair!r}"
            )
            return None
        pairs.append((src, dst))
    return tuple(pairs)


def execute_route(params: dict) -> dict:
    """Route one job in a worker process; the plan blob lands on disk.

    Returns a flat JSON-serializable result: the plan's content digest and
    key, the routing counters, and honest host timing.  ``cached`` reports
    whether *this worker* replayed an existing blob (the event loop
    normally answers warm requests itself, so a worker-side hit means two
    cold requests raced past the coalescing window — rare but correct).
    """
    from ..sim.engine import route_demands
    from ..sim.plancache import PlanCache
    from ..sim.task import build_topology, build_workload

    topology = build_topology(params["topology"], int(params["n"]))
    if params.get("demands") is not None:
        pairs = [(int(s), int(d)) for s, d in params["demands"]]
        sources = [s for s, _ in pairs]
        dests = [d for _, d in pairs]
    else:
        sources, dests = build_workload(
            params["workload"], int(params["n"]), int(params.get("seed", 99))
        )
        pairs = list(zip(sources, dests))

    fault_model = None
    if params.get("fault"):
        from ..faults import FaultModel

        fault_model = FaultModel.from_params(params["fault"])

    plan_root = params.get("plan_root")
    cache = PlanCache(plan_root) if plan_root else None

    t0 = time.perf_counter()
    routed = route_demands(
        topology,
        pairs,
        arbitration=params.get("arbitration", "overtaking"),
        backend=params.get("backend", "indexed"),
        cache=cache if cache is not None else False,
        fault_model=fault_model,
    )
    route_seconds = time.perf_counter() - t0

    from ..sim.plancache import plan_key
    from ..sim.routers import router_for

    key = plan_key(
        topology, sources, dests, router_for(topology),
        params.get("arbitration", "overtaking"), fault_model,
    )
    stats = routed.stats
    return {
        "digest": key.digest,
        "key": key.to_dict(),
        "packets": len(pairs),
        "stats": {
            "steps": stats.steps,
            "total_hops": stats.total_hops,
            "max_queue_depth": stats.max_queue_depth,
            "blocked_moves": stats.blocked_moves,
            "delivered": stats.delivered,
            "dropped": stats.dropped,
            "retried": stats.retried,
        },
        "cached": bool(cache is not None and cache.hits),
        "route_seconds": round(route_seconds, 6),
    }
