"""The Beneš rearrangeable multistage network.

The Omega network (:mod:`repro.networks.omega`) blocks on most
permutations; the classical fix is the Beneš network: ``2 log2 N - 1``
stages of ``N/2`` two-by-two switches wired as a butterfly followed by a
mirrored butterfly.  It is **rearrangeable** — any permutation passes in a
single conflict-free pass — by the same Slepian–Duguid argument that gives
the 2D hypermesh its 3-step bound, and the constructive switch setting is
the classical **looping algorithm**:

* inputs ``2i, 2i+1`` share a first-stage switch and must enter different
  halves; outputs ``2j, 2j+1`` share a last-stage switch and must *leave*
  different halves;
* those constraints form a union of even cycles, 2-colored by walking each
  loop; the color decides upper/lower half;
* recurse on the two induced half-size permutations.

Including it makes the paper's Section I taxonomy complete on both sides:
the hypermesh is compared against a *blocking* multistage network (Omega)
and a *rearrangeable* one (Beneš) — the latter matches the hypermesh's
any-permutation power but spends ``2 log N - 1`` switch stages doing it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..routing.permutation import Permutation
from .addressing import ilog2

__all__ = ["BenesNetwork", "BenesRouting"]


@dataclass(frozen=True)
class BenesRouting:
    """Switch settings realizing one permutation.

    ``settings[stage][switch]`` is False for *straight* (input k -> output
    k) and True for *cross*.  Stages are numbered 0 .. 2 log N - 2.
    """

    num_ports: int
    settings: tuple[tuple[bool, ...], ...]

    @property
    def num_stages(self) -> int:
        """``2 log2 N - 1``."""
        return len(self.settings)


class BenesNetwork:
    """An ``N x N`` Beneš network (``N`` a power of two, ``N >= 2``)."""

    def __init__(self, num_ports: int):
        self._width = ilog2(num_ports)
        if self._width < 1:
            raise ValueError("a Benes network needs at least 2 ports")
        self._n = num_ports

    @property
    def num_ports(self) -> int:
        """Inputs (= outputs) of the network."""
        return self._n

    @property
    def num_stages(self) -> int:
        """``2 log2 N - 1`` switch columns."""
        return 2 * self._width - 1

    @property
    def switches_per_stage(self) -> int:
        """``N / 2`` two-by-two switches per column."""
        return self._n // 2

    # ------------------------------------------------------------- routing
    def route(self, perm: Permutation) -> BenesRouting:
        """Compute switch settings realizing ``perm`` (looping algorithm).

        Always succeeds — rearrangeability — and the result is verified by
        :meth:`simulate` in the test suite.
        """
        if perm.n != self._n:
            raise ValueError(
                f"permutation on {perm.n} points, network has {self._n} ports"
            )
        stages: list[list[bool]] = [
            [False] * (self._n // 2) for _ in range(self.num_stages)
        ]
        self._route_recursive(
            perm.destinations.tolist(),
            list(range(self._n)),
            stage_lo=0,
            stage_hi=self.num_stages - 1,
            offset=0,
            stages=stages,
        )
        return BenesRouting(
            num_ports=self._n,
            settings=tuple(tuple(s) for s in stages),
        )

    def _route_recursive(
        self,
        dest: list[int],
        ports: list[int],
        stage_lo: int,
        stage_hi: int,
        offset: int,
        stages: list[list[bool]],
    ) -> None:
        """Set switches for the sub-network handling ``ports`` (size m).

        ``dest`` maps local input position -> local output position within
        this sub-network; ``offset`` is the first global switch index of the
        sub-network in each of its stages.
        """
        m = len(dest)
        if m == 2:
            # The middle single switch: cross iff the pair swaps.
            stages[stage_lo][offset] = dest[0] == 1
            return

        half = m // 2
        # 2-color input pairs: color[i] says which half input i enters
        # (0 = upper). Constraints: partners at input switches differ;
        # partners at output switches differ.
        inv = [0] * m
        for i, d in enumerate(dest):
            inv[d] = i
        color = [-1] * m
        for start in range(m):
            if color[start] != -1:
                continue
            #

            i = start
            c = 0
            while color[i] == -1:
                color[i] = c
                color[i ^ 1] = 1 - c
                # Follow the output-pair constraint from i's partner.
                partner_out = dest[i ^ 1]
                j = inv[partner_out ^ 1]
                c = 1 - color[i ^ 1]
                i = j

        # Input-stage switches: switch k handles inputs 2k, 2k+1; cross iff
        # input 2k goes to the lower half.
        for k in range(half):
            stages[stage_lo][offset + k] = color[2 * k] == 1
        # Output-stage switches: cross iff output 2k arrives from lower.
        for k in range(half):
            stages[stage_hi][offset + k] = color[inv[2 * k]] == 1

        # Induced sub-permutations: input i sits at position i // 2 of its
        # half; output d sits at position d // 2 of its half.
        upper_dest = [0] * half
        lower_dest = [0] * half
        for i in range(m):
            if color[i] == 0:
                upper_dest[i // 2] = dest[i] // 2
            else:
                lower_dest[i // 2] = dest[i] // 2
        self._route_recursive(
            upper_dest, ports[:half], stage_lo + 1, stage_hi - 1, offset, stages
        )
        self._route_recursive(
            lower_dest,
            ports[half:],
            stage_lo + 1,
            stage_hi - 1,
            offset + half // 2,
            stages,
        )

    # ---------------------------------------------------------- simulation
    def simulate(self, routing: BenesRouting) -> np.ndarray:
        """Push one packet per input through ``routing``; return the arrival
        order (``result[input] = output port``)."""
        if routing.num_ports != self._n:
            raise ValueError("routing was computed for a different size")
        return np.array(
            [self._trace(port, routing) for port in range(self._n)],
            dtype=np.int64,
        )

    def _trace(self, port: int, routing: BenesRouting) -> int:
        """Follow one packet through all stages (recursive descent that
        mirrors the construction: depth d handles sub-networks of size
        N / 2^d with local positions)."""
        return self._trace_recursive(port, routing, depth=0, offset=0, size=self._n)

    def _trace_recursive(
        self, pos: int, routing: BenesRouting, depth: int, offset: int, size: int
    ) -> int:
        stage_lo = depth
        stage_hi = self.num_stages - 1 - depth
        if size == 2:
            cross = routing.settings[stage_lo][offset]
            return (pos ^ 1) if cross else pos

        half = size // 2
        switch = offset + pos // 2
        cross = routing.settings[stage_lo][switch]
        # Output port of the input switch: 0 = to upper half, 1 = lower.
        out = (pos % 2) ^ (1 if cross else 0)
        sub_pos = pos // 2
        if out == 0:
            sub_out = self._trace_recursive(
                sub_pos, routing, depth + 1, offset, half
            )
            arrived_lower = False
        else:
            sub_out = self._trace_recursive(
                sub_pos, routing, depth + 1, offset + half // 2, half
            )
            arrived_lower = True
        # Output switch `sub_out` of this sub-network.
        out_switch = offset + sub_out
        cross_out = routing.settings[stage_hi][out_switch]
        # Upper-half arrivals enter port 0, lower port 1.
        port_in = 1 if arrived_lower else 0
        port_out = port_in ^ (1 if cross_out else 0)
        return 2 * sub_out + port_out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BenesNetwork(num_ports={self._n})"
