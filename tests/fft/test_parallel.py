"""Unit tests for the parallel FFT execution."""

import numpy as np
import pytest

from repro.core import map_fft
from repro.fft import build_fft_program, parallel_fft
from repro.networks import Hypercube, Hypermesh2D, Mesh2D, Torus2D
from repro.networks.addressing import bit_reversal_permutation


TOPOLOGIES_16 = [Mesh2D(4), Torus2D(4), Hypercube(4), Hypermesh2D(4)]


class TestCorrectness:
    @pytest.mark.parametrize(
        "topo", TOPOLOGIES_16, ids=lambda t: type(t).__name__
    )
    def test_matches_numpy(self, topo, rng):
        x = rng.normal(size=16) + 1j * rng.normal(size=16)
        result = parallel_fft(topo, x, validate=True)
        assert np.allclose(result.spectrum, np.fft.fft(x))

    def test_larger_instance_64(self, rng):
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        for topo in (Mesh2D(8), Hypercube(6), Hypermesh2D(8)):
            result = parallel_fft(topo, x)
            assert np.allclose(result.spectrum, np.fft.fft(x))

    def test_without_bitrev_gives_bit_reversed_spectrum(self, rng):
        x = rng.normal(size=16)
        result = parallel_fft(Hypercube(4), x, include_bit_reversal=False)
        perm = bit_reversal_permutation(16)
        assert np.allclose(result.spectrum[perm], np.fft.fft(x))

    def test_real_input(self, rng):
        x = rng.normal(size=16)
        result = parallel_fft(Hypermesh2D(4), x)
        assert np.allclose(result.spectrum, np.fft.fft(x))

    def test_impulse(self):
        x = np.zeros(16)
        x[0] = 1.0
        result = parallel_fft(Hypercube(4), x)
        assert np.allclose(result.spectrum, np.ones(16))


class TestStepAccounting:
    def test_hypercube_2_log_n_even(self):
        result = parallel_fft(Hypercube(4), np.zeros(16))
        assert result.data_transfer_steps == 8
        assert result.computation_steps == 4

    def test_hypermesh_log_n_plus_3(self):
        result = parallel_fft(Hypermesh2D(8), np.zeros(64))
        assert result.data_transfer_steps == 6 + 3

    def test_mesh_butterfly_plus_measured_bitrev(self):
        result = parallel_fft(Mesh2D(4), np.zeros(16))
        assert result.mapping.butterfly_steps == 6
        assert result.data_transfer_steps >= 6 + 6

    def test_skipping_bitrev_reduces_steps(self):
        with_rev = parallel_fft(Hypermesh2D(4), np.zeros(16))
        without = parallel_fft(Hypermesh2D(4), np.zeros(16), include_bit_reversal=False)
        assert with_rev.data_transfer_steps - without.data_transfer_steps == 3


class TestInverse:
    @pytest.mark.parametrize(
        "topo", TOPOLOGIES_16, ids=lambda t: type(t).__name__
    )
    def test_roundtrip(self, topo, rng):
        from repro.fft import parallel_ifft

        x = rng.normal(size=16) + 1j * rng.normal(size=16)
        spectrum = parallel_fft(topo, x).spectrum
        back = parallel_ifft(topo, spectrum)
        assert np.allclose(back.spectrum, x)

    def test_matches_numpy_ifft(self, rng):
        from repro.fft import parallel_ifft

        x = rng.normal(size=16) + 1j * rng.normal(size=16)
        result = parallel_ifft(Hypercube(4), x)
        assert np.allclose(result.spectrum, np.fft.ifft(x))

    def test_same_step_bill_as_forward(self):
        from repro.fft import parallel_ifft

        fwd = parallel_fft(Hypermesh2D(4), np.zeros(16))
        inv = parallel_ifft(Hypermesh2D(4), np.zeros(16))
        assert inv.data_transfer_steps == fwd.data_transfer_steps


class TestMappingReuse:
    def test_prebuilt_mapping(self, rng):
        topo = Hypercube(4)
        mapping = map_fft(topo)
        x = rng.normal(size=16)
        result = parallel_fft(topo, x, mapping=mapping)
        assert np.allclose(result.spectrum, np.fft.fft(x))
        assert result.mapping is mapping

    def test_program_structure(self):
        mapping = map_fft(Hypercube(3))
        program = build_fft_program(mapping)
        # exchange+compute per stage, plus the closing permute.
        assert len(program) == 2 * 3 + 1

    def test_fft_plan_memoizes_per_instance(self, rng):
        from repro.fft import fft_plan

        topo = Hypercube(4)
        plan = fft_plan(topo)
        assert fft_plan(topo) is plan  # planned once, replayed thereafter
        # ...and parallel_fft consults the same cache when no mapping given.
        x = rng.normal(size=16)
        result = parallel_fft(topo, x)
        assert result.mapping is plan
        assert np.allclose(result.spectrum, np.fft.fft(x))

    def test_fft_plan_keyed_by_instance_and_bitrev(self):
        from repro.fft import fft_plan

        a, b = Hypercube(4), Hypercube(4)
        # Distinct instances plan separately (SimdMachine requires each
        # schedule's topology to BE the machine's topology object)...
        assert fft_plan(a) is not fft_plan(b)
        # ...and the bit-reversal variant is a separate plan.
        assert fft_plan(a) is not fft_plan(a, include_bit_reversal=False)


class TestValidation:
    def test_sample_count_mismatch(self):
        with pytest.raises(ValueError):
            parallel_fft(Hypercube(4), np.zeros(8))

    def test_2d_samples_rejected(self):
        with pytest.raises(ValueError):
            parallel_fft(Hypercube(2), np.zeros((2, 2)))
