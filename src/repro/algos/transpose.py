"""Matrix transpose — the "matrix algorithms" permutation of Section I.

With a ``sqrt(N) x sqrt(N)`` matrix stored one element per PE in row-major
order, transposition is the address permutation that swaps the row and
column bit fields.  Per network:

* **hypercube** — ``log N / 2`` bit-pair swaps ``(k, k + log N / 2)``, each
  a 2-step conflict-free exchange: ``log N`` steps total (constructive);
* **2D hypermesh** — the generic Clos decomposition: at most 3 net steps
  (and transpose genuinely needs 3: the destination row of a packet is its
  source *column*, so every row's packets must reach ``sqrt(N)`` distinct
  rows, which no single row- or column-phase pair can arrange);
* **2D mesh / torus** — measured by greedy XY routing; the diagonal-corner
  pairs put a ``2(sqrt(N)-1)``-ish floor under it (element ``(0, s-1)``
  must travel to ``(s-1, 0)``).
"""

from __future__ import annotations

from ..networks.addressing import ilog2
from ..networks.base import Topology
from ..networks.hypercube import Hypercube
from ..networks.hypermesh import Hypermesh2D
from ..networks.mesh import Mesh2D
from ..networks.torus import Torus2D
from ..routing.clos import route_permutation_3step
from ..routing.families import matrix_transpose
from ..sim.engine import route_permutation
from ..sim.schedule import CommSchedule, schedule_from_phases

__all__ = ["transpose_schedule"]


def _hypercube_transpose(hypercube: Hypercube) -> CommSchedule:
    width = hypercube.dimension
    if width % 2:
        raise ValueError("transpose needs an even number of address bits")
    half = width // 2
    n = hypercube.num_nodes
    side = 1 << half
    position = list(range(n))
    steps: list[dict[int, int]] = []
    for k in range(half):
        i, j = k, k + half
        step1: dict[int, int] = {}
        step2: dict[int, int] = {}
        for pid in range(n):
            pos = position[pid]
            if ((pos >> i) & 1) != ((pos >> j) & 1):
                step1[pid] = pos ^ (1 << i)
                step2[pid] = pos ^ (1 << i) ^ (1 << j)
                position[pid] = step2[pid]
        steps.append(step1)
        steps.append(step2)
    return CommSchedule(
        topology=hypercube,
        logical=matrix_transpose(side, side),
        steps=tuple(steps),
    )


def transpose_schedule(topology: Topology) -> CommSchedule:
    """Lower the row-major matrix transpose onto ``topology``.

    Returns a validated-shape :class:`CommSchedule` whose logical permutation
    is :func:`repro.routing.families.matrix_transpose` of the square side.
    """
    n = topology.num_nodes
    width = ilog2(n)
    if width % 2:
        raise ValueError(f"{n} PEs do not form a square power-of-two layout")
    side = 1 << (width // 2)

    if isinstance(topology, Hypercube):
        return _hypercube_transpose(topology)
    if isinstance(topology, Hypermesh2D):
        route = route_permutation_3step(matrix_transpose(side, side), topology)
        return schedule_from_phases(topology, route.phases)
    if isinstance(topology, (Mesh2D, Torus2D)):
        return route_permutation(topology, matrix_transpose(side, side)).schedule
    raise TypeError(f"no transpose lowering for {type(topology).__name__}")
