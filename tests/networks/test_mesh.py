"""Unit tests for the mesh topology."""

import pytest

from repro.networks import Mesh, Mesh2D
from repro.networks.base import ChannelModel


class TestConstruction:
    def test_node_count(self):
        assert Mesh((3, 5)).num_nodes == 15

    def test_mesh2d_is_square(self):
        m = Mesh2D(4)
        assert m.num_nodes == 16
        assert m.side == 4
        assert m.radices == (4, 4)

    def test_rejects_empty_radices(self):
        with pytest.raises(ValueError):
            Mesh(())

    def test_rejects_degenerate_extent(self):
        with pytest.raises(ValueError):
            Mesh((4, 1))

    def test_channel_model(self):
        assert Mesh2D(3).channel_model is ChannelModel.POINT_TO_POINT


class TestCoordinates:
    def test_row_major(self):
        m = Mesh2D(4)
        assert m.coordinates(0) == (0, 0)
        assert m.coordinates(5) == (1, 1)
        assert m.coordinates(15) == (3, 3)

    def test_node_at_roundtrip(self):
        m = Mesh((3, 4, 2))
        for node in m.nodes():
            assert m.node_at(m.coordinates(node)) == node

    def test_row_col_alias(self):
        assert Mesh2D(4).row_col(7) == (1, 3)

    def test_validate_node(self):
        with pytest.raises(ValueError):
            Mesh2D(4).coordinates(16)


class TestAdjacency:
    def test_corner_has_two_neighbors(self):
        m = Mesh2D(4)
        assert sorted(m.neighbors(0)) == [1, 4]

    def test_interior_has_four_neighbors(self):
        m = Mesh2D(4)
        assert sorted(m.neighbors(5)) == [1, 4, 6, 9]

    def test_edge_has_three_neighbors(self):
        m = Mesh2D(4)
        assert sorted(m.neighbors(1)) == [0, 2, 5]

    def test_adjacency_is_symmetric(self):
        m = Mesh((3, 4))
        for node in m.nodes():
            for nb in m.neighbors(node):
                assert node in m.neighbors(nb)

    def test_no_wraparound(self):
        m = Mesh2D(4)
        assert 3 not in m.neighbors(0)
        assert 12 not in m.neighbors(0)

    def test_links_each_once(self):
        m = Mesh2D(3)
        links = list(m.links())
        assert len(links) == len(set(links))
        assert all(u < v for u, v in links)

    def test_link_count_formula(self):
        # s x s mesh: 2 s (s-1) links.
        for s in (2, 3, 4, 5):
            assert Mesh2D(s).num_links() == 2 * s * (s - 1)


class TestDistance:
    def test_manhattan(self):
        m = Mesh2D(4)
        assert m.distance(0, 15) == 6
        assert m.distance(0, 3) == 3
        assert m.distance(5, 5) == 0

    def test_distance_symmetric(self):
        m = Mesh2D(4)
        for a in m.nodes():
            for b in m.nodes():
                assert m.distance(a, b) == m.distance(b, a)

    def test_diameter_formula(self):
        assert Mesh2D(4).diameter == 6
        assert Mesh2D(8).diameter == 14
        assert Mesh((3, 5)).diameter == 6

    def test_diameter_matches_paper_4k(self):
        # 64x64: 2(sqrt(N)-1) = 126.
        assert Mesh2D(64).diameter == 126


class TestHardware:
    def test_degree_includes_pe_port(self):
        assert Mesh2D(4).node_degree == 5

    def test_degree_extent_two(self):
        assert Mesh((2, 2)).node_degree == 3

    def test_one_crossbar_per_pe(self):
        assert Mesh2D(8).num_crossbars == 64

    def test_mixed_dimensions_degree(self):
        assert Mesh((2, 5)).node_degree == 4  # 1 + 2 + PE
