"""FFT on general (non-2D) hypermesh shapes — the Section IV remark."""

import numpy as np
import pytest

from repro.core import map_fft
from repro.fft import parallel_fft
from repro.hardware import GAAS_1992, link_bandwidth
from repro.networks import Hypermesh, Hypermesh2D


class TestButterflyOnAnyShape:
    @pytest.mark.parametrize(
        "base,dims", [(2, 4), (4, 2), (4, 3), (8, 2), (16, 1)]
    )
    def test_numerics(self, base, dims, rng):
        hm = Hypermesh(base, dims)
        n = hm.num_nodes
        x = rng.normal(size=n) + 1j * rng.normal(size=n)
        result = parallel_fft(hm, x, validate=True)
        assert np.allclose(result.spectrum, np.fft.fft(x))

    @pytest.mark.parametrize("base,dims", [(2, 4), (4, 2), (4, 3)])
    def test_butterfly_is_log_n_steps(self, base, dims):
        hm = Hypermesh(base, dims)
        mapping = map_fft(hm, include_bit_reversal=False)
        assert mapping.butterfly_steps == (hm.num_nodes).bit_length() - 1

    def test_non_power_of_two_base_rejected(self):
        hm = Hypermesh(3, 2)
        with pytest.raises(ValueError):
            map_fft(hm)


class TestShapeTradeoff:
    def test_link_bandwidth_is_kl_over_dims(self):
        kl = GAAS_1992.aggregate_crossbar_bandwidth
        assert link_bandwidth(Hypermesh(8, 4), GAAS_1992) == pytest.approx(kl / 4)
        assert link_bandwidth(Hypermesh(16, 3), GAAS_1992) == pytest.approx(kl / 3)
        assert link_bandwidth(Hypermesh2D(64), GAAS_1992) == pytest.approx(kl / 2)

    def test_2d_shape_fastest_at_64_points(self, rng):
        """At small scale too: fewer dims -> wider links + cheap bitrev."""
        x = rng.normal(size=64)
        expected = np.fft.fft(x)
        times = {}
        for hm in (Hypermesh(4, 3), Hypermesh2D(8)):
            result = parallel_fft(hm, x)
            assert np.allclose(result.spectrum, expected)
            bw = link_bandwidth(hm, GAAS_1992)
            times[hm.dims] = (
                result.data_transfer_steps * GAAS_1992.packet_bits / bw
            )
        assert times[2] < times[3]

    def test_too_many_nets_for_the_ic_budget_rejected(self):
        """base-2 shapes need more nets than the one-IC-per-PE budget can
        serve: the paper's construction constraint, enforced."""
        with pytest.raises(ValueError):
            link_bandwidth(Hypermesh(2, 6), GAAS_1992)

    def test_1d_hypermesh_is_a_single_crossbar(self):
        """base = N, dims = 1: one net holding everyone — bit reversal is
        one step, the degenerate best case (but needs an N-port crossbar)."""
        hm = Hypermesh(16, 1)
        mapping = map_fft(hm)
        assert mapping.bitrev_steps <= 2
        assert mapping.total_steps <= 6
