"""Circular convolution and correlation on the simulated machines.

The FFT's flagship application: ``x (*) h = ifft(fft(x) . fft(h))``.  Both
transforms and the inverse run as mapped parallel executions, so the result
carries a complete word-level communication bill — three transforms' worth
(two forward, one inverse), each priced per Table 2B.

The pointwise product is a local computation (one computation step, no
communication), which is the whole reason convolution loves the FFT.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.fftmap import FftMapping, map_fft
from ..networks.base import Topology
from .parallel import parallel_fft, parallel_ifft

__all__ = ["ConvolutionResult", "parallel_convolve", "parallel_correlate"]


@dataclass(frozen=True)
class ConvolutionResult:
    """Outcome of a parallel circular convolution / correlation."""

    values: np.ndarray
    data_transfer_steps: int
    computation_steps: int


def parallel_convolve(
    topology: Topology,
    signal: np.ndarray,
    kernel: np.ndarray,
    *,
    validate: bool = False,
) -> ConvolutionResult:
    """Circular convolution of ``signal`` with ``kernel`` (one sample/PE).

    Equivalent to ``numpy.fft.ifft(fft(signal) * fft(kernel))``; real inputs
    give (numerically) real outputs, returned as complex for generality.
    """
    signal = np.asarray(signal, dtype=np.complex128)
    kernel = np.asarray(kernel, dtype=np.complex128)
    if signal.shape != kernel.shape or signal.ndim != 1:
        raise ValueError("signal and kernel must be equal-length 1D vectors")
    mapping: FftMapping = map_fft(topology)
    fx = parallel_fft(topology, signal, validate=validate, mapping=mapping)
    fh = parallel_fft(topology, kernel, validate=validate, mapping=mapping)
    product = fx.spectrum * fh.spectrum  # local: one computation step
    back = parallel_ifft(topology, product, validate=validate, mapping=mapping)
    return ConvolutionResult(
        values=back.spectrum,
        data_transfer_steps=(
            fx.data_transfer_steps
            + fh.data_transfer_steps
            + back.data_transfer_steps
        ),
        computation_steps=(
            fx.computation_steps + fh.computation_steps + back.computation_steps + 1
        ),
    )


def parallel_correlate(
    topology: Topology,
    signal: np.ndarray,
    template: np.ndarray,
    *,
    validate: bool = False,
) -> ConvolutionResult:
    """Circular cross-correlation: convolution with the conjugated spectrum.

    Peak position of the (real part of the) output locates the template in
    the signal — the matched-filter workload.
    """
    signal = np.asarray(signal, dtype=np.complex128)
    template = np.asarray(template, dtype=np.complex128)
    if signal.shape != template.shape or signal.ndim != 1:
        raise ValueError("signal and template must be equal-length 1D vectors")
    mapping: FftMapping = map_fft(topology)
    fx = parallel_fft(topology, signal, validate=validate, mapping=mapping)
    ft = parallel_fft(topology, template, validate=validate, mapping=mapping)
    product = fx.spectrum * np.conj(ft.spectrum)
    back = parallel_ifft(topology, product, validate=validate, mapping=mapping)
    return ConvolutionResult(
        values=back.spectrum,
        data_transfer_steps=(
            fx.data_transfer_steps
            + ft.data_transfer_steps
            + back.data_transfer_steps
        ),
        computation_steps=(
            fx.computation_steps + ft.computation_steps + back.computation_steps + 1
        ),
    )
