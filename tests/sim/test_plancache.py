"""Unit tests for the content-addressed routing plan cache.

Covers the cache-key contract (what invalidates a plan), the in-memory LRU
and on-disk tiers, corruption fallback (a bad blob must mean *live routing*,
never a wrong plan), and the engine's ``cache=`` integration including the
instrumentation bypass.
"""

import json

import pytest

from repro.networks import Hypercube, Hypermesh2D, Mesh2D, Torus2D
from repro.routing import Permutation, bit_reversal
from repro.sim import route_demands, route_permutation
from repro.sim import plancache
from repro.sim.plancache import (
    PLAN_SCHEMA_VERSION,
    CachedPlan,
    PlanCache,
    demands_digest,
    plan_key,
    resolve_cache,
    router_id,
    set_process_default,
    topology_fingerprint,
)
from repro.sim.routers import (
    HypercubeEcubeRouter,
    MeshDimensionOrderRouter,
    TabulatedRouter,
    router_for,
)


def _key(topology, n=None, *, arbitration="overtaking", router=None):
    n = topology.num_nodes if n is None else n
    perm = bit_reversal(n)
    return plan_key(
        topology,
        list(range(n)),
        perm.destinations.tolist(),
        router or router_for(topology),
        arbitration,
    )


class TestPlanKey:
    def test_same_inputs_same_digest(self):
        a = _key(Mesh2D(4))
        b = _key(Mesh2D(4))  # distinct topology instance, same content
        assert a is not b and a.digest == b.digest

    def test_router_changes_digest(self):
        mesh = Mesh2D(4)
        a = _key(mesh)
        b = _key(mesh, router=TabulatedRouter(MeshDimensionOrderRouter(mesh)))
        # TabulatedRouter unwraps to the inner discipline: same key.
        assert a.digest == b.digest
        c = _key(Hypercube(4))
        assert a.digest != c.digest

    def test_arbitration_changes_digest(self):
        a = _key(Mesh2D(4))
        b = _key(Mesh2D(4), arbitration="fifo")
        assert a.digest != b.digest

    def test_topology_shape_changes_digest(self):
        assert _key(Mesh2D(4)).digest != _key(Torus2D(4)).digest
        assert (
            topology_fingerprint(Hypermesh2D(4))
            != topology_fingerprint(Hypercube(4))
        )

    def test_demands_change_digest(self):
        assert demands_digest([0, 1], [1, 0]) != demands_digest([0, 1], [0, 1])
        # Order matters: packet ids are positional.
        assert demands_digest([0, 1], [1, 0]) != demands_digest([1, 0], [0, 1])

    def test_unregistered_router_is_uncacheable(self):
        class OddRouter:
            def next_hop(self, current, dest):
                return None

        assert router_id(OddRouter()) is None
        perm = bit_reversal(16)
        key = plan_key(
            Mesh2D(4),
            list(range(16)),
            perm.destinations.tolist(),
            OddRouter(),
            "overtaking",
        )
        assert key is None

    def test_schema_version_is_part_of_key(self):
        a = _key(Mesh2D(4))
        assert a.schema == PLAN_SCHEMA_VERSION
        assert str(PLAN_SCHEMA_VERSION) in json.dumps(a.to_dict())


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = PlanCache()
        mesh, perm = Mesh2D(4), bit_reversal(16)
        cold = route_permutation(mesh, perm, cache=cache)
        warm = route_permutation(mesh, perm, cache=cache)
        assert cache.misses == 1 and cache.hits == 1
        assert warm.schedule.steps == cold.schedule.steps
        assert warm.stats == cold.stats

    def test_replay_bit_identical_to_live(self):
        cache = PlanCache()
        for topo in (Mesh2D(4), Torus2D(4), Hypercube(4), Hypermesh2D(4)):
            perm = bit_reversal(topo.num_nodes)
            route_permutation(topo, perm, cache=cache)  # record
            warm = route_permutation(topo, perm, cache=cache)
            live = route_permutation(topo, perm)  # no cache: live routing
            assert warm.schedule.steps == live.schedule.steps
            assert warm.stats == live.stats

    def test_replay_steps_are_fresh_dicts(self):
        cache = PlanCache()
        mesh, perm = Mesh2D(4), bit_reversal(16)
        first = route_permutation(mesh, perm, cache=cache)
        # Mutating one replay must not poison the cached plan.
        second = route_permutation(mesh, perm, cache=cache)
        second.schedule.steps[0].clear()
        third = route_permutation(mesh, perm, cache=cache)
        assert third.schedule.steps == first.schedule.steps

    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        meshes = [Mesh2D(2), Mesh2D(3), Mesh2D(4)]
        for mesh in meshes:
            n = mesh.num_nodes
            route_demands(mesh, [(0, n - 1)], cache=cache)
        assert len(cache) == 2 and cache.evictions == 1
        # The oldest entry (Mesh2D(2)) was evicted: re-routing it misses.
        route_demands(Mesh2D(2), [(0, 3)], cache=cache)
        assert cache.misses == 4 and cache.hits == 0


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        mesh, perm = Mesh2D(4), bit_reversal(16)
        writer = PlanCache(tmp_path)
        cold = route_permutation(mesh, perm, cache=writer)
        assert len(writer.disk_blobs()) == 1
        assert writer.disk_bytes() > 0

        reader = PlanCache(tmp_path)  # fresh process, warm disk
        warm = route_permutation(mesh, perm, cache=reader)
        assert reader.hits == 1 and reader.misses == 0
        assert warm.schedule.steps == cold.schedule.steps
        assert warm.stats == cold.stats

    def test_corrupted_blob_falls_back_to_live_routing(self, tmp_path):
        mesh, perm = Mesh2D(4), bit_reversal(16)
        writer = PlanCache(tmp_path)
        cold = route_permutation(mesh, perm, cache=writer)
        [blob] = writer.disk_blobs()
        blob.write_text("{ not json")

        reader = PlanCache(tmp_path)
        result = route_permutation(mesh, perm, cache=reader)
        assert reader.corrupt == 1 and reader.hits == 0
        assert result.schedule.steps == cold.schedule.steps  # routed live

    def test_truncated_blob_falls_back(self, tmp_path):
        mesh, perm = Mesh2D(4), bit_reversal(16)
        writer = PlanCache(tmp_path)
        route_permutation(mesh, perm, cache=writer)
        [blob] = writer.disk_blobs()
        blob.write_bytes(blob.read_bytes()[: len(blob.read_bytes()) // 2])

        reader = PlanCache(tmp_path)
        result = route_permutation(mesh, perm, cache=reader)
        assert reader.corrupt == 1
        assert result.stats.delivered == 16

    def test_schema_bump_invalidates_old_blobs(self, tmp_path, monkeypatch):
        mesh, perm = Mesh2D(4), bit_reversal(16)
        writer = PlanCache(tmp_path)
        route_permutation(mesh, perm, cache=writer)

        monkeypatch.setattr(plancache, "PLAN_SCHEMA_VERSION", 999)
        reader = PlanCache(tmp_path)
        result = route_permutation(mesh, perm, cache=reader)
        # New schema => new digest => the old blob is simply never found.
        assert reader.hits == 0 and reader.misses == 1
        assert result.stats.delivered == 16

    def test_stale_schema_inside_blob_rejected(self, tmp_path):
        # Same digest but a blob whose recorded schema disagrees (e.g. a
        # hand-edited or half-migrated file) is treated as a miss.
        mesh, perm = Mesh2D(4), bit_reversal(16)
        writer = PlanCache(tmp_path)
        route_permutation(mesh, perm, cache=writer)
        [blob] = writer.disk_blobs()
        payload = json.loads(blob.read_text())
        payload["schema"] = PLAN_SCHEMA_VERSION + 1
        blob.write_text(json.dumps(payload))

        reader = PlanCache(tmp_path)
        route_permutation(mesh, perm, cache=reader)
        assert reader.hits == 0 and reader.misses == 1

    def test_clear_removes_blobs_and_entries(self, tmp_path):
        cache = PlanCache(tmp_path)
        route_permutation(Mesh2D(4), bit_reversal(16), cache=cache)
        removed = cache.clear()
        assert removed == 1
        assert len(cache) == 0 and cache.disk_blobs() == []


class TestResolveAndDefaults:
    def test_resolve_modes(self, tmp_path):
        assert resolve_cache(None) is None
        assert resolve_cache(False) is None
        mem = resolve_cache("memory")
        assert mem is resolve_cache(True)  # True is the memory singleton
        cache = PlanCache()
        assert resolve_cache(cache) is cache
        disk = resolve_cache(tmp_path)
        assert disk.root == tmp_path
        with pytest.raises(TypeError):
            resolve_cache(3.14)

    def test_process_default_round_trip(self):
        cache = PlanCache()
        previous = set_process_default(cache)
        try:
            mesh, perm = Mesh2D(4), bit_reversal(16)
            route_permutation(mesh, perm)  # cache=None -> process default
            route_permutation(mesh, perm)
            assert cache.misses == 1 and cache.hits == 1
            # cache=False opts out even while a default is installed.
            route_permutation(mesh, perm, cache=False)
            assert cache.hits == 1
        finally:
            set_process_default(previous)

    def test_instrumented_runs_bypass_the_cache(self):
        cache = PlanCache()
        mesh, perm = Mesh2D(4), bit_reversal(16)
        route_permutation(mesh, perm, cache=cache)
        seen = []
        route_permutation(
            mesh, perm, cache=cache, on_step=lambda i, m, s: seen.append(i)
        )
        route_permutation(mesh, perm, cache=cache, timing=True)
        assert cache.bypassed == 2 and cache.hits == 0
        assert seen  # the traced run really routed live

    def test_unregistered_router_counted_uncacheable(self):
        class OddRouter:
            def __init__(self, mesh):
                self._inner = MeshDimensionOrderRouter(mesh)

            def next_hop(self, current, dest):
                return self._inner.next_hop(current, dest)

        cache = PlanCache()
        mesh = Mesh2D(4)
        route_permutation(mesh, bit_reversal(16), OddRouter(mesh), cache=cache)
        assert cache.uncacheable == 1 and cache.misses == 0

    def test_counters_snapshot(self):
        cache = PlanCache()
        route_permutation(Mesh2D(4), bit_reversal(16), cache=cache)
        counters = cache.counters()
        assert counters["misses"] == 1
        assert set(counters) >= {
            "hits", "misses", "bypassed", "uncacheable", "corrupt", "evictions"
        }


class TestRouteDemandsIntegration:
    def test_h_relation_replay_identical(self, rng):
        cache = PlanCache()
        topo = Hypercube(4)
        demands = [
            (int(s), int(d))
            for s, d in zip(
                rng.integers(0, 16, size=8), rng.integers(0, 16, size=8)
            )
        ]
        cold = route_demands(topo, demands, cache=cache)
        warm = route_demands(topo, demands, cache=cache)
        assert cache.misses == 1 and cache.hits == 1
        assert warm.steps == cold.steps
        assert warm.stats == cold.stats

    def test_distinct_demand_order_routes_separately(self):
        cache = PlanCache()
        mesh = Mesh2D(3)
        route_demands(mesh, [(0, 8), (8, 0)], cache=cache)
        route_demands(mesh, [(8, 0), (0, 8)], cache=cache)
        assert cache.misses == 2 and cache.hits == 0
