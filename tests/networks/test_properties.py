"""Closed-form topology properties versus brute-force recomputation.

These tests are the paper's Table 1A ground truth: every formula the models
rely on is re-derived by BFS / exhaustive search on instances.
"""

import pytest

from repro.networks import Hypercube, Hypermesh, Hypermesh2D, Mesh, Mesh2D, Torus, Torus2D
from repro.networks.properties import (
    bfs_distances,
    computed_average_distance,
    computed_diameter,
    degree_histogram,
    eccentricity,
    exhaustive_bisection_width,
    halving_cut_links,
    halving_cut_nets,
    max_network_degree,
    net_crossing_ports,
)


class TestBfs:
    def test_distances_match_closed_form(self, any_topology):
        topo = any_topology
        for source in topo.nodes():
            dist = bfs_distances(topo, source)
            for target in topo.nodes():
                assert dist[target] == topo.distance(source, target)

    def test_eccentricity_of_corner(self):
        assert eccentricity(Mesh2D(4), 0) == 6

    def test_source_validated(self):
        with pytest.raises(ValueError):
            bfs_distances(Mesh2D(3), 9)


class TestDiameter:
    def test_closed_form_matches_bfs(self, any_topology):
        assert any_topology.diameter == computed_diameter(any_topology)

    @pytest.mark.parametrize("side", [2, 3, 4, 5])
    def test_mesh_scaling(self, side):
        assert computed_diameter(Mesh2D(side)) == 2 * (side - 1)

    @pytest.mark.parametrize("dim", [1, 2, 3, 4, 5])
    def test_hypercube_scaling(self, dim):
        assert computed_diameter(Hypercube(dim)) == dim

    @pytest.mark.parametrize("base,dims", [(2, 2), (3, 2), (4, 2), (2, 3), (3, 3)])
    def test_hypermesh_scaling(self, base, dims):
        assert computed_diameter(Hypermesh(base, dims)) == dims


class TestDegrees:
    def test_mesh_degree_histogram(self):
        hist = degree_histogram(Mesh2D(4))
        assert hist == {2: 4, 3: 8, 4: 4}

    def test_torus_uniform(self):
        assert degree_histogram(Torus2D(4)) == {4: 16}

    def test_hypercube_uniform(self):
        assert degree_histogram(Hypercube(4)) == {4: 16}

    def test_hypermesh_uniform(self):
        # n (b-1) = 2 * 3 = 6 neighbours everywhere.
        assert degree_histogram(Hypermesh2D(4)) == {6: 16}

    def test_max_network_degree_vs_node_degree(self, any_topology):
        topo = any_topology
        if isinstance(topo, (Mesh, Torus, Hypercube)):
            # node_degree counts ports (incl. PE): max neighbours + 1.
            assert max_network_degree(topo) == topo.node_degree - 1


class TestAverageDistance:
    def test_single_pair(self):
        assert computed_average_distance(Hypercube(1)) == 1.0

    def test_hypercube_formula(self):
        # Average Hamming distance over distinct pairs: n/2 * N/(N-1).
        for dim in (2, 3, 4):
            n = 1 << dim
            expected = dim / 2 * n / (n - 1)
            assert computed_average_distance(Hypercube(dim)) == pytest.approx(expected)

    def test_hypermesh_shorter_than_mesh(self):
        assert computed_average_distance(Hypermesh2D(4)) < computed_average_distance(
            Mesh2D(4)
        )


class TestHalvingCut:
    @pytest.mark.parametrize("side", [2, 4, 6])
    def test_mesh_cut_is_side(self, side):
        # The index-halving cut slices between row side/2-1 and side/2.
        assert halving_cut_links(Mesh2D(side)) == side

    @pytest.mark.parametrize("side", [4, 6])
    def test_torus_cut_is_two_sides(self, side):
        assert halving_cut_links(Torus2D(side)) == 2 * side

    @pytest.mark.parametrize("dim", [2, 3, 4, 5])
    def test_hypercube_cut_is_half_nodes(self, dim):
        assert halving_cut_links(Hypercube(dim)) == 2 ** (dim - 1)

    @pytest.mark.parametrize("side", [2, 4, 6])
    def test_hypermesh_cut_nets_is_side(self, side):
        # All column nets are cut; row nets are not.
        assert halving_cut_nets(Hypermesh2D(side)) == side

    @pytest.mark.parametrize("side", [2, 4, 6])
    def test_hypermesh_crossing_ports(self, side):
        # side cut nets x side/2 ports each.
        assert net_crossing_ports(Hypermesh2D(side)) == side * side // 2

    def test_odd_node_count_rejected(self):
        with pytest.raises(ValueError):
            halving_cut_links(Mesh((3, 3)))


class TestExhaustiveBisection:
    def test_mesh_2x2(self):
        assert exhaustive_bisection_width(Mesh2D(2)) == 2

    def test_hypercube_3d(self):
        assert exhaustive_bisection_width(Hypercube(3)) == 4

    def test_torus_2x2(self):
        assert exhaustive_bisection_width(Torus((2, 2))) == 2

    def test_hypermesh_2x2(self):
        # Any balanced split cuts at least 2 of the 4 nets.
        assert exhaustive_bisection_width(Hypermesh2D(2)) == 2

    def test_hypermesh_nets_resist_bisection(self):
        # 3x3 hypermesh has 9 nodes (odd) — use base 2, dims 3: every
        # balanced cut severs at least 4 of the 12 nets.
        width = exhaustive_bisection_width(Hypermesh(2, 3))
        assert width == 4

    def test_halving_cut_upper_bounds_exhaustive(self):
        for topo in (Mesh2D(2), Hypercube(3), Torus((2, 2))):
            assert exhaustive_bisection_width(topo) <= halving_cut_links(topo)

    def test_size_guard(self):
        with pytest.raises(ValueError):
            exhaustive_bisection_width(Hypercube(5))
