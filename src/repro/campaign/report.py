"""Campaign reporting: status tables for humans, ``BENCH_*``-style JSON for
the perf-trajectory artifacts at the repo root.

The JSON shape mirrors ``BENCH_engine.json`` (a ``benchmark`` identifier, a
flat ``rows`` list, and a summary block) so campaign artifacts slot into the
same tooling that reads the existing benchmark files.
"""

from __future__ import annotations

import json
import platform
from pathlib import Path
from typing import Iterable, Sequence

from .metrics import TaskRecord, summarize
from .spec import CampaignSpec

__all__ = ["campaign_report", "format_status_table", "write_report"]


def format_status_table(records: Sequence[TaskRecord]) -> str:
    """Render one line per task: label, status, attempts, cache, wall."""
    from ..viz import format_table

    rows = []
    for r in records:
        status = r.status.upper()
        if r.failure_kind:
            status = f"{status}({r.failure_kind})"
        rows.append(
            [
                r.label or r.task_hash,
                status,
                r.attempts,
                "hit" if r.cache_hit else "run",
                f"{r.wall_seconds * 1e3:.1f}",
            ]
        )
    return format_table(["task", "status", "attempts", "cache", "wall ms"], rows)


def campaign_report(
    spec: CampaignSpec | None,
    records: Iterable[TaskRecord],
    *,
    wall_seconds: float = 0.0,
    extra: dict | None = None,
) -> dict:
    """Aggregate records into a ``BENCH_*``-compatible JSON document."""
    records = list(records)
    summary = summarize(records, wall_seconds=wall_seconds)
    name = spec.name if spec is not None else "campaign"
    report = {
        "benchmark": f"repro.campaign::{name}",
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": _cpu_count(),
        },
        "summary": summary.to_dict(),
        "rows": [
            {
                "task": r.label or r.task_hash,
                "task_hash": r.task_hash,
                "status": r.status,
                "failure_kind": r.failure_kind,
                "attempts": r.attempts,
                "cache_hit": r.cache_hit,
                "wall_seconds": round(r.wall_seconds, 6),
                "trace_ref": r.trace_ref,
                "payload": r.payload,
            }
            for r in records
        ],
    }
    congestion = _congestion_rollup(records)
    if congestion:
        report["congestion"] = congestion
    if spec is not None:
        report["spec_hash"] = spec.spec_hash
        report["meta"] = dict(spec.meta)
    if extra:
        report.update(extra)
    return report


def _congestion_rollup(records: Sequence[TaskRecord]) -> list[dict]:
    """Per-task link-utilization summaries for tasks that carried traces.

    A traced routing task (``run_routing_task`` with ``trace`` set) reports
    its most-congested channels in the payload's ``"top_links"`` key; this
    lifts them next to the trace refs so a report reader sees *where* the
    steps went without opening the JSONL files.
    """
    rows = []
    for r in records:
        top = r.payload.get("top_links") if isinstance(r.payload, dict) else None
        if r.trace_ref is None and not top:
            continue
        rows.append(
            {
                "task": r.label or r.task_hash,
                "trace_ref": r.trace_ref,
                "top_links": top or [],
            }
        )
    return rows


def _cpu_count() -> int:
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def write_report(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2, default=str) + "\n")
    return path
