"""In-process service runner for tests and the load harness.

:class:`ServiceRunner` runs a :class:`~repro.service.app.RoutingService`
on its own event loop in a daemon thread, so synchronous test code (and
``benchmarks/bench_service.py``) can drive a *real* socket-level server —
actual HTTP over localhost, actual worker processes — without subprocess
management or port guessing (``port=0`` binds an ephemeral port).

Usage::

    with ServiceRunner(plan_root=tmp) as runner:
        response = runner.client().route({...})

The context exit performs the service's graceful shutdown (drain, then
stop the loop) and re-raises nothing: a test that wants to assert on
drain behavior calls :meth:`shutdown` explicitly first.
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import Future

from .app import RoutingService
from .client import ServiceClient

__all__ = ["ServiceRunner"]


class ServiceRunner:
    """Run a service on a background event loop; synchronous controls."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **service_kwargs):
        self._host = host
        self._port = port
        self._kwargs = service_kwargs
        self.service: RoutingService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started: Future = Future()

    # ------------------------------------------------------------ lifecycle
    def start(self) -> "ServiceRunner":
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._started.result(timeout=30)  # re-raises bind/start failures
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        service = RoutingService(**self._kwargs)
        try:
            loop.run_until_complete(service.start(self._host, self._port))
        except BaseException as exc:  # bind failure: surface in start()
            self._started.set_exception(exc)
            loop.close()
            return
        self.service = service
        self._started.set_result(None)
        try:
            loop.run_forever()
        finally:
            loop.close()

    def submit(self, coro) -> Future:
        """Schedule a coroutine on the service loop; returns its Future."""
        if self._loop is None:
            raise RuntimeError("runner not started")
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def shutdown(self, *, drain_timeout: float = 30.0) -> None:
        """Gracefully shut the service down (idempotent)."""
        if self.service is not None and self._loop is not None:
            if not self._loop.is_closed():
                self.submit(
                    self.service.shutdown(drain_timeout=drain_timeout)
                ).result(timeout=drain_timeout + 30)

    def stop(self) -> None:
        """Shutdown, then stop and join the loop thread."""
        try:
            self.shutdown()
        finally:
            if self._loop is not None and not self._loop.is_closed():
                self._loop.call_soon_threadsafe(self._loop.stop)
            if self._thread is not None:
                self._thread.join(timeout=30)

    # ----------------------------------------------------------- utilities
    @property
    def port(self) -> int:
        assert self.service is not None and self.service.port is not None
        return self.service.port

    @property
    def host(self) -> str:
        assert self.service is not None and self.service.host is not None
        return self.service.host

    def client(self, **kwargs) -> ServiceClient:
        return ServiceClient(self.host, self.port, **kwargs)

    def __enter__(self) -> "ServiceRunner":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
