"""Hardware model: pin-limited crossbars, transmission-line links, and the
equal-aggregate-bandwidth cost normalization of Section III-D."""

from .cost import NormalizedNetwork, link_bandwidth, link_pins, normalize, step_time
from .crossbar import Crossbar, ganged_bandwidth, pins_per_port
from .link import Link, SPEED_NS_PER_FOOT
from .technology import GAAS_1992, GBIT, MBIT, NANOSECOND, Technology

__all__ = [
    "Technology",
    "GAAS_1992",
    "MBIT",
    "GBIT",
    "NANOSECOND",
    "Crossbar",
    "pins_per_port",
    "ganged_bandwidth",
    "Link",
    "SPEED_NS_PER_FOOT",
    "NormalizedNetwork",
    "normalize",
    "link_pins",
    "link_bandwidth",
    "step_time",
]
