"""2D FFT image filtering on the parallel machines.

A 16x16 "image" (a smooth scene plus high-frequency speckle), one pixel per
PE, is transformed with the row-column parallel 2D FFT, low-pass filtered in
the frequency plane, and transformed back — the classic matrix-algorithm
workload of Section I.  On the hypermesh the whole 2D transform costs
``log N + 8`` data-transfer steps: the row stages ride the row nets and the
two transposes ride the 3-step rearrangeability.

    python examples/image_filtering.py
"""

import numpy as np

from repro import GAAS_1992, Hypercube, Hypermesh2D, Mesh2D
from repro.fft import parallel_fft_2d
from repro.hardware import step_time
from repro.viz import format_table, format_time


def make_image(side: int, rng: np.random.Generator):
    r, c = np.meshgrid(np.arange(side), np.arange(side), indexing="ij")
    scene = np.sin(2 * np.pi * r / side) + np.cos(2 * np.pi * 2 * c / side)
    speckle = 0.8 * rng.normal(size=(side, side))
    return scene, scene + speckle


def lowpass_2d(topo, image: np.ndarray, keep: int):
    side = image.shape[0]
    forward = parallel_fft_2d(topo, image)
    spectrum = forward.spectrum.copy()
    # Keep only the lowest `keep` frequencies in each axis (with symmetry).
    mask = np.zeros((side, side), dtype=bool)
    idx = np.r_[0 : keep + 1, side - keep : side]
    mask[np.ix_(idx, idx)] = True
    spectrum[~mask] = 0.0
    backward = parallel_fft_2d(topo, np.conj(spectrum))
    filtered = np.conj(backward.spectrum) / (side * side)
    steps = forward.data_transfer_steps + backward.data_transfer_steps
    return filtered.real, steps


def main() -> None:
    side = 16
    rng = np.random.default_rng(5)
    scene, noisy = make_image(side, rng)

    print(f"Low-pass filtering a {side}x{side} image (keep 3 bins per axis)\n")
    rows = []
    reference = None
    for topo in (Mesh2D(side), Hypercube(8), Hypermesh2D(side)):
        filtered, steps = lowpass_2d(topo, noisy, keep=3)
        if reference is None:
            reference = filtered
        else:
            assert np.allclose(filtered, reference)
        err_before = float(np.sqrt(np.mean((noisy - scene) ** 2)))
        err_after = float(np.sqrt(np.mean((filtered - scene) ** 2)))
        per_step = step_time(topo, GAAS_1992)
        rows.append(
            [
                type(topo).__name__,
                f"{err_before:.3f} -> {err_after:.3f}",
                steps,
                format_time(steps * per_step),
            ]
        )
    print(
        format_table(
            ["network", "RMS error (before -> after)", "transfer steps", "comm time"],
            rows,
        )
    )
    print(
        "\nBoth 2D transforms ride the hypermesh's row nets and 3-step "
        "transposes: log N + 8 steps per transform."
    )


if __name__ == "__main__":
    main()
