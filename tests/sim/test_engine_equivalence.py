"""The engine-equivalence guarantee, enforced.

The indexed arbitration engine in ``repro.sim.engine`` must produce
**bit-identical** schedules and statistics to the seed loop preserved in
``repro.sim._reference`` — same step dicts, same counters — on every
topology family, for permutations and h-relations alike.  These tests are
the contract the rebuild was done under; if one fails, the optimization
changed observable routing behaviour and must be fixed, not the test.
"""

import numpy as np
import pytest

from repro.networks import (
    Hypercube,
    Hypermesh,
    Hypermesh2D,
    Mesh,
    Mesh2D,
    Torus,
    Torus2D,
)
from repro.routing import Permutation, bit_reversal
from repro.sim._reference import reference_route_core
from repro.sim.engine import _route_core
from repro.sim.routers import router_for

TOPOLOGIES = [
    Mesh2D(4),
    Torus2D(4),
    Hypercube(4),
    Hypermesh2D(4),
    Mesh((3, 5)),
    Torus((5, 3)),
    Hypermesh(3, 3),
]
IDS = [f"{type(t).__name__}-{t.num_nodes}" for t in TOPOLOGIES]


def both_engines(topology, sources, dests, max_steps=None):
    router = router_for(topology)
    if max_steps is None:
        max_steps = 100 * (10 * topology.diameter + 10 * topology.num_nodes)
    new = _route_core(topology, sources, dests, router, max_steps)
    ref = reference_route_core(topology, sources, dests, router, max_steps)
    return new, ref


def assert_identical(new, ref):
    new_steps, new_stats = new
    ref_steps, ref_stats = ref
    assert new_steps == ref_steps
    # RoutingStats equality covers steps, total_hops, max_queue_depth,
    # blocked_moves, delivered and per_step_moves (timing is excluded by
    # design: the reference engine is untimed).
    assert new_stats == ref_stats


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=IDS)
def test_random_permutations_identical(topology, rng):
    n = topology.num_nodes
    for _ in range(3):
        perm = Permutation.random(n, rng)
        new, ref = both_engines(
            topology, list(range(n)), perm.destinations.tolist()
        )
        assert_identical(new, ref)


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=IDS)
def test_bit_reversal_identical(topology):
    n = topology.num_nodes
    if n & (n - 1):
        pytest.skip("bit reversal needs a power-of-two node count")
    perm = bit_reversal(n)
    new, ref = both_engines(topology, list(range(n)), perm.destinations.tolist())
    assert_identical(new, ref)


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=IDS)
def test_random_h_relations_identical(topology, rng):
    n = topology.num_nodes
    for scale in (1, 3):
        sources = rng.integers(0, n, size=scale * n).tolist()
        dests = rng.integers(0, n, size=scale * n).tolist()
        new, ref = both_engines(topology, sources, dests)
        assert_identical(new, ref)


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=IDS)
def test_hotspot_gather_identical(topology, rng):
    """All packets funnel to one node: maximal queueing and arbitration."""
    n = topology.num_nodes
    sources = list(range(n))
    dests = [0] * n
    new, ref = both_engines(topology, sources, dests)
    assert_identical(new, ref)


def test_sparse_demands_identical(rng):
    """Few packets on a big network — the active-worklist path — still match."""
    topology = Mesh2D(16)
    n = topology.num_nodes
    sources = rng.integers(0, n, size=12).tolist()
    dests = rng.integers(0, n, size=12).tolist()
    new, ref = both_engines(topology, sources, dests)
    assert_identical(new, ref)


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=IDS)
def test_cached_replay_identical_to_live(topology, rng):
    """A plan-cache replay must be indistinguishable from live routing:
    same step dicts, same RoutingStats — through both tiers."""
    from repro.sim import PlanCache, route_permutation

    n = topology.num_nodes
    perm = Permutation.random(n, rng)
    cache = PlanCache()
    live = route_permutation(topology, perm, cache=False)
    cold = route_permutation(topology, perm, cache=cache)
    warm = route_permutation(topology, perm, cache=cache)
    if cache.uncacheable:
        pytest.skip("no registered router id for this topology's router")
    assert cache.misses == 1 and cache.hits == 1
    for result in (cold, warm):
        assert result.schedule.steps == live.schedule.steps
        assert result.stats == live.stats


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=IDS)
def test_disk_replay_identical_to_live(topology, rng, tmp_path):
    from repro.sim import PlanCache, route_permutation

    n = topology.num_nodes
    perm = Permutation.random(n, rng)
    live = route_permutation(topology, perm, cache=False)
    route_permutation(topology, perm, cache=PlanCache(tmp_path))
    reader = PlanCache(tmp_path)  # cold in-memory tier, warm disk tier
    warm = route_permutation(topology, perm, cache=reader)
    if not reader.hits:
        pytest.skip("uncacheable router: nothing reached the disk tier")
    assert warm.schedule.steps == live.schedule.steps
    assert warm.stats == live.stats


@pytest.mark.parametrize("topology", TOPOLOGIES, ids=IDS)
def test_next_hop_array_matches_scalar(topology, rng):
    """The engine's batched hop refill relies on next_hop_array answering
    exactly like next_hop, elementwise, for every (current, dest) pair."""
    router = router_for(topology)
    n = topology.num_nodes
    pairs = [(c, d) for c in range(n) for d in range(n) if c != d]
    cur = [c for c, _ in pairs]
    dst = [d for _, d in pairs]
    batched = router.next_hop_array(cur, dst).tolist()
    for (c, d), hop in zip(pairs, batched):
        assert hop == router.next_hop(c, d), (c, d)
    # Equal pairs pass through unchanged (the array analogue of None).
    same = router.next_hop_array([0, n - 1], [0, n - 1]).tolist()
    assert same == [0, n - 1]


def test_max_steps_guard_identical():
    """Both engines refuse an exhausted step budget with ScheduleError."""
    from repro.sim.schedule import ScheduleError

    topology = Mesh2D(4)
    perm = bit_reversal(16)
    router = router_for(topology)
    args = (topology, list(range(16)), perm.destinations.tolist(), router, 2)
    with pytest.raises(ScheduleError, match="undelivered"):
        _route_core(*args)
    with pytest.raises(ScheduleError, match="undelivered"):
        reference_route_core(*args)
