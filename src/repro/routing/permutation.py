"""Permutation algebra for communication phases.

Every communication phase of the FFT and bitonic-sort flow graphs is a
permutation of the ``N`` packets (possibly partial: some PEs idle).  The
:class:`Permutation` class wraps a validated NumPy index array with the
operations schedules need — composition, inversion, application to data
arrays — plus the structural predicates the paper's analysis leans on
(involution, fixed points, bit-permute-complement classification).

Convention: ``perm[i]`` is the **destination** of the packet currently at
position ``i`` ("where does my datum go"), so applying a permutation to a
data vector ``x`` produces ``y`` with ``y[perm[i]] = x[i]``.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from ..networks.addressing import bit, ilog2

__all__ = ["Permutation", "is_permutation_array"]


def is_permutation_array(values: Sequence[int] | np.ndarray) -> bool:
    """True when ``values`` is a permutation of ``0..len-1``."""
    arr = np.asarray(values)
    if arr.ndim != 1 or arr.size == 0:
        return False
    if not np.issubdtype(arr.dtype, np.integer):
        return False
    n = arr.size
    if arr.min() < 0 or arr.max() >= n:
        return False
    return np.unique(arr).size == n


class Permutation:
    """A permutation of ``0..n-1``, stored as a destination array."""

    __slots__ = ("_dest",)

    def __init__(self, destinations: Sequence[int] | np.ndarray):
        arr = np.asarray(destinations, dtype=np.int64).copy()
        if not is_permutation_array(arr):
            raise ValueError("input is not a permutation of 0..n-1")
        arr.setflags(write=False)
        self._dest = arr

    # ------------------------------------------------------- constructors
    @classmethod
    def identity(cls, n: int) -> "Permutation":
        """The identity permutation on ``n`` points."""
        return cls(np.arange(n, dtype=np.int64))

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int], n: int) -> "Permutation":
        """Build from a sparse ``source -> destination`` map; unmapped points
        stay put.  Raises if the completed map is not a permutation."""
        dest = np.arange(n, dtype=np.int64)
        for src, dst in mapping.items():
            if not 0 <= src < n:
                raise ValueError(f"source {src} out of range")
            dest[src] = dst
        return cls(dest)

    @classmethod
    def random(cls, n: int, rng: np.random.Generator | None = None) -> "Permutation":
        """A uniformly random permutation (for property tests and stress)."""
        rng = rng or np.random.default_rng()
        return cls(rng.permutation(n))

    @classmethod
    def from_cycles(cls, cycles: Iterable[Sequence[int]], n: int) -> "Permutation":
        """Build from disjoint cycles; points not mentioned stay fixed."""
        dest = np.arange(n, dtype=np.int64)
        seen: set[int] = set()
        for cycle in cycles:
            for point in cycle:
                if point in seen:
                    raise ValueError(f"point {point} appears in two cycles")
                seen.add(point)
            for i, point in enumerate(cycle):
                dest[point] = cycle[(i + 1) % len(cycle)]
        return cls(dest)

    # ------------------------------------------------------------ algebra
    @property
    def n(self) -> int:
        """Number of points."""
        return int(self._dest.size)

    @property
    def destinations(self) -> np.ndarray:
        """Read-only destination array: ``destinations[src] = dst``."""
        return self._dest

    def __getitem__(self, source: int) -> int:
        return int(self._dest[source])

    def __len__(self) -> int:
        return self.n

    def inverse(self) -> "Permutation":
        """The inverse permutation."""
        inv = np.empty_like(self._dest)
        inv[self._dest] = np.arange(self.n, dtype=np.int64)
        return Permutation(inv)

    def compose(self, then: "Permutation") -> "Permutation":
        """``then`` applied after ``self``: result[i] = then[self[i]].

        Matches sequential routing phases: packets first move by ``self``,
        the arrangement is then moved by ``then``.
        """
        if then.n != self.n:
            raise ValueError("cannot compose permutations of different sizes")
        return Permutation(then._dest[self._dest])

    def __mul__(self, then: "Permutation") -> "Permutation":
        return self.compose(then)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Permutation):
            return NotImplemented
        return self.n == other.n and bool(np.array_equal(self._dest, other._dest))

    def __hash__(self) -> int:
        return hash(self._dest.tobytes())

    # --------------------------------------------------------- predicates
    def is_identity(self) -> bool:
        """True when every point is fixed."""
        return bool(np.array_equal(self._dest, np.arange(self.n)))

    def is_involution(self) -> bool:
        """True when the permutation is its own inverse (e.g. bit reversal,
        every single-stage butterfly exchange)."""
        return bool(np.array_equal(self._dest[self._dest], np.arange(self.n)))

    def fixed_points(self) -> np.ndarray:
        """Indices ``i`` with ``perm[i] == i``."""
        idx = np.arange(self.n)
        return idx[self._dest == idx]

    def cycles(self) -> list[list[int]]:
        """Disjoint cycle decomposition (cycles of length >= 2 only)."""
        seen = np.zeros(self.n, dtype=bool)
        out: list[list[int]] = []
        for start in range(self.n):
            if seen[start]:
                continue
            cycle = [start]
            seen[start] = True
            point = int(self._dest[start])
            while point != start:
                cycle.append(point)
                seen[point] = True
                point = int(self._dest[point])
            if len(cycle) >= 2:
                out.append(cycle)
        return out

    def is_bpc(self) -> bool:
        """True when this is a bit-permute-complement permutation.

        A BPC permutation computes each destination address by permuting the
        source address bits and complementing a fixed subset — the class
        containing bit reversal, perfect shuffles, and all butterfly
        exchanges.  Requires ``n`` to be a power of two.
        """
        return self.bpc_spec() is not None

    def bpc_spec(self) -> tuple[tuple[int, ...], int] | None:
        """Recover ``(bit_source, complement_mask)`` if this is BPC.

        ``dest bit j = source bit bit_source[j] XOR bit j of complement_mask``.
        Returns None when the permutation is not BPC (or n is not a power
        of 2).
        """
        try:
            width = ilog2(self.n)
        except ValueError:
            return None
        if width == 0:
            return (), 0
        complement = int(self._dest[0])  # image of address 0 fixes the mask
        sources: list[int] = []
        for j in range(width):
            # The source bit feeding destination bit j is identified by the
            # image of the unit address 1 << i.
            src = None
            for i in range(width):
                if bit(int(self._dest[1 << i]) ^ complement, j):
                    if src is not None:
                        return None  # two source bits influence one dest bit
                    src = i
            if src is None:
                return None
            sources.append(src)
        if len(set(sources)) != width:
            return None
        # Verify the affine-over-GF(2) reconstruction on every address.
        for addr in range(self.n):
            image = complement
            for j, src in enumerate(sources):
                if bit(addr, src):
                    image ^= 1 << j
            if image != int(self._dest[addr]):
                return None
        return tuple(sources), complement

    # -------------------------------------------------------- application
    def apply(self, data: np.ndarray, axis: int = 0) -> np.ndarray:
        """Move data: output position ``perm[i]`` receives ``data[i]``."""
        data = np.asarray(data)
        if data.shape[axis] != self.n:
            raise ValueError(
                f"data axis {axis} has length {data.shape[axis]}, expected {self.n}"
            )
        out = np.empty_like(data)
        index = [slice(None)] * data.ndim
        index[axis] = self._dest
        out[tuple(index)] = data
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.n <= 16:
            return f"Permutation({self._dest.tolist()})"
        return f"Permutation(n={self.n})"
