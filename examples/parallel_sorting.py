"""Order statistics on a parallel machine: bitonic sort of sensor readings.

A 256-element batch of noisy sensor readings is sorted with Batcher's
bitonic network (the paper's ASCEND/DESCEND companion algorithm) on all
three interconnects; the sorted layout then yields the median and the
percentile trim directly by PE index.  Step counts illustrate why [13] found
the hypermesh ~6.5x faster than the hypercube for this algorithm.

    python examples/parallel_sorting.py
"""

import numpy as np

from repro import GAAS_1992, Hypercube, Hypermesh2D, Mesh2D
from repro.hardware import step_time
from repro.sort import parallel_bitonic_sort
from repro.viz import format_table, format_time


def main() -> None:
    side = 16
    n = side * side
    rng = np.random.default_rng(42)
    readings = 20.0 + 2.0 * rng.normal(size=n)
    readings[rng.integers(0, n, size=5)] += 40.0  # a few faulty sensors

    print(f"Sorting {n} sensor readings (5 outliers injected)\n")
    rows = []
    for topo in (Mesh2D(side), Hypercube(n.bit_length() - 1), Hypermesh2D(side)):
        result = parallel_bitonic_sort(topo, readings, validate=True)
        assert np.array_equal(result.keys, np.sort(readings))
        per_step = step_time(topo, GAAS_1992)
        rows.append(
            [
                type(topo).__name__,
                result.computation_steps,
                result.data_transfer_steps,
                format_time(result.data_transfer_steps * per_step),
            ]
        )
        sorted_keys = result.keys

    print(
        format_table(
            ["network", "compare passes", "transfer steps", "comm time"], rows
        )
    )

    median = sorted_keys[n // 2]
    p95 = sorted_keys[int(n * 0.95)]
    trimmed = sorted_keys[: int(n * 0.98)]
    print(f"\nmedian reading: {median:.2f}")
    print(f"95th percentile: {p95:.2f}")
    print(
        f"2% trimmed mean: {trimmed.mean():.2f} "
        f"(raw mean {readings.mean():.2f} was pulled up by the outliers)"
    )


if __name__ == "__main__":
    main()
