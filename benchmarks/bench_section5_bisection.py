"""E7 — Section V: bisection bandwidth.

Published: mesh sqrt(N)*KL/5, hypercube (N/2)*KL/log N, hypermesh N*KL/2;
ratios O(sqrt N) and O(log N).  The formulas are also recomputed by counting
crossing channels on concrete instances.
"""

import pytest
from conftest import emit

from repro.core.complexity import NetworkKind
from repro.hardware import GAAS_1992
from repro.models import (
    bisection_bandwidth_formula,
    bisection_ratios,
    computed_bisection_bandwidth,
)
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.viz import format_bandwidth, format_table

KL = GAAS_1992.aggregate_crossbar_bandwidth


def test_section5_formulas(benchmark):
    def compute():
        return {
            k: bisection_bandwidth_formula(k, 4096, GAAS_1992, paper_convention=True)
            for k in (
                NetworkKind.MESH_2D,
                NetworkKind.HYPERCUBE,
                NetworkKind.HYPERMESH_2D,
            )
        }

    results = benchmark(compute)
    rows = [
        [k.value, f"{bb.channels:g}", format_bandwidth(bb.per_channel), format_bandwidth(bb.total)]
        for k, bb in results.items()
    ]
    r_mesh, r_hc = bisection_ratios(4096, GAAS_1992)
    emit(
        "Section V: bisection bandwidth (paper convention, N = 4096)",
        format_table(["network", "channels", "per channel", "total"], rows)
        + f"\nratios: hypermesh/mesh = {r_mesh:g} (2.5 sqrt N), "
        f"hypermesh/hypercube = {r_hc:g} (log N)",
    )
    assert results[NetworkKind.MESH_2D].total == pytest.approx(64 * KL / 5)
    assert results[NetworkKind.HYPERCUBE].total == pytest.approx(2048 * KL / 12)
    assert results[NetworkKind.HYPERMESH_2D].total == pytest.approx(4096 * KL / 2)


def test_section5_computed_on_instances(benchmark):
    def compute():
        return {
            "2D mesh": computed_bisection_bandwidth(Mesh2D(8), GAAS_1992),
            "hypercube": computed_bisection_bandwidth(Hypercube(6), GAAS_1992),
            "2D hypermesh": computed_bisection_bandwidth(Hypermesh2D(8), GAAS_1992),
        }

    results = benchmark(compute)
    emit(
        "Section V cross-check: crossing-channel count on 64-PE instances",
        "\n".join(f"{k}: {format_bandwidth(v)}" for k, v in results.items()),
    )
    assert results["2D hypermesh"] > results["hypercube"] > results["2D mesh"]


def test_section5_ratio_scaling(benchmark):
    import math

    def sweep():
        return [(4**k, bisection_ratios(4**k, GAAS_1992)) for k in range(2, 9)]

    data = benchmark(sweep)
    emit(
        "Section V ratios vs N",
        "\n".join(
            f"N={n:6d}: vs mesh {rm:9.1f} (2.5 sqrt N = {2.5 * math.sqrt(n):9.1f}), "
            f"vs cube {rh:5.1f} (log N = {math.log2(n):4.1f})"
            for n, (rm, rh) in data
        ),
    )
    for n, (rm, rh) in data:
        assert rm == pytest.approx(2.5 * math.sqrt(n))
        assert rh == pytest.approx(math.log2(n))
