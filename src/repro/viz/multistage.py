"""ASCII rendering of multistage networks (Omega / Beneš).

Fig. 2 of the paper calls the FFT flow graph "an SW-banyan"; the Omega and
Beneš networks are the hardware embodiments of that wiring, so the
comparison benches render them alongside the hypermesh diagram.  Switches
are drawn per column with their port spans; for a routed Beneš network the
installed setting (``=`` straight / ``X`` cross) is shown per switch.
"""

from __future__ import annotations

from ..networks.benes import BenesNetwork, BenesRouting
from ..networks.omega import OmegaNetwork

__all__ = ["render_omega", "render_benes"]


def render_omega(network: OmegaNetwork) -> str:
    """Column-per-stage sketch of an Omega network."""
    n = network.num_ports
    lines = [
        f"Omega network, {n} ports, {network.num_stages} stages of "
        f"{network.switches_per_stage} 2x2 switches",
        "(each stage: perfect-shuffle wiring, then a switch column;",
        " destination-tag self-routing, blocking)",
        "",
    ]
    width = len(str(n - 1))
    for sw in range(network.switches_per_stage):
        ports = f"[{2 * sw:>{width}},{2 * sw + 1:>{width}}]"
        row = "  ".join(ports for _ in range(network.num_stages))
        lines.append(f"{ports} -shuffle-> " + row)
    return "\n".join(lines)


def render_benes(network: BenesNetwork, routing: BenesRouting | None = None) -> str:
    """Column-per-stage sketch of a Beneš network, with settings if given.

    Straight switches print ``=``, crossed ones ``X``; without a routing the
    switches print ``?``.
    """
    n = network.num_ports
    lines = [
        f"Benes network, {n} ports, {network.num_stages} stages of "
        f"{network.switches_per_stage} 2x2 switches (rearrangeable)",
        "",
    ]
    if routing is not None and routing.num_ports != n:
        raise ValueError("routing was computed for a different size")
    for sw in range(network.switches_per_stage):
        cells = []
        for stage in range(network.num_stages):
            if routing is None:
                mark = "?"
            else:
                mark = "X" if routing.settings[stage][sw] else "="
            cells.append(f"({mark})")
        lines.append(f"ports {2 * sw},{2 * sw + 1}: " + "--".join(cells))
    return "\n".join(lines)
