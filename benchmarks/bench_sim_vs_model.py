"""E13 — simulator-versus-model cross-validation.

Runs the *numerical* parallel FFT (data moved, twiddles applied, result
checked against numpy) on every network across sizes, and confirms that the
executed data-transfer step counts match the Table 2A closed forms.
"""

import numpy as np
import pytest
from conftest import emit

from repro.core.complexity import NetworkKind
from repro.fft import parallel_fft
from repro.models import StepConvention, fft_steps
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.viz import format_table


def _run(topo, rng):
    x = rng.normal(size=topo.num_nodes) + 1j * rng.normal(size=topo.num_nodes)
    result = parallel_fft(topo, x)
    assert np.allclose(result.spectrum, np.fft.fft(x))
    return result.data_transfer_steps


def test_hypercube_sim_equals_model(benchmark, rng):
    def run():
        return {
            1 << d: _run(Hypercube(d), rng) for d in (2, 4, 6, 8, 10)
        }

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    model = {
        n: fft_steps(NetworkKind.HYPERCUBE, n, convention=StepConvention.CONSTRUCTIVE)
        for n in measured
    }
    emit(
        "Hypercube: executed FFT steps vs model",
        format_table(
            ["N", "measured", "model"],
            [[n, measured[n], f"{model[n]:g}"] for n in measured],
        ),
    )
    assert all(measured[n] == model[n] for n in measured)


def test_hypermesh_sim_within_model_bound(benchmark, rng):
    def run():
        return {s * s: _run(Hypermesh2D(s), rng) for s in (2, 4, 8, 16, 32)}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    bound = {n: fft_steps(NetworkKind.HYPERMESH_2D, n) for n in measured}
    emit(
        "Hypermesh: executed FFT steps vs <= log N + 3 bound",
        format_table(
            ["N", "measured", "bound"],
            [[n, measured[n], f"{bound[n]:g}"] for n in measured],
        ),
    )
    assert all(measured[n] <= bound[n] for n in measured)
    # At practical sizes the bound is tight.
    assert measured[1024] == 13


def test_mesh_sim_meets_lower_bounds(benchmark, rng):
    def run():
        return {s * s: _run(Mesh2D(s), rng) for s in (2, 4, 8, 16)}

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Mesh: executed FFT steps vs >= 2(sqrt N - 1) + bit-reversal bound",
        format_table(
            ["N", "measured", "butterfly bound", "no-wrap bitrev bound"],
            [
                [n, measured[n], 2 * (int(n**0.5) - 1), 2 * (int(n**0.5) - 1)]
                for n in measured
            ],
        ),
    )
    for n, steps in measured.items():
        side = int(round(n**0.5))
        assert steps >= 4 * (side - 1)


def test_fft_numerics_4096_hypermesh(benchmark, rng):
    """The paper's headline machine: 4K-point FFT on the 64x64 hypermesh,
    executed with real data and validated schedules."""

    def run():
        x = rng.normal(size=4096) + 1j * rng.normal(size=4096)
        result = parallel_fft(Hypermesh2D(64), x, validate=True)
        assert np.allclose(result.spectrum, np.fft.fft(x))
        return result.data_transfer_steps

    steps = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("4K-point FFT on the 64x64 hypermesh", f"data-transfer steps = {steps}")
    assert steps == 15  # log N + 3, exactly equation (4)'s step count
