"""Text rendering of tables and data series for the benchmark harness.

No plotting dependency is assumed offline, so sweep "figures" are emitted as
aligned text tables plus a log-scale ASCII chart good enough to eyeball the
O(sqrt(N)/log N) and O(log N) growth shapes.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["format_table", "format_rows", "ascii_chart", "format_time", "format_bandwidth"]


def format_time(seconds: float) -> str:
    """Human-scale time: ns / us / ms / s."""
    if seconds < 0:
        raise ValueError("negative duration")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f} ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.2f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def format_bandwidth(bits_per_second: float) -> str:
    """Human-scale bandwidth: Mbit/s or Gbit/s."""
    if bits_per_second < 0:
        raise ValueError("negative bandwidth")
    if bits_per_second >= 1e9:
        return f"{bits_per_second / 1e9:.2f} Gbit/s"
    return f"{bits_per_second / 1e6:.1f} Mbit/s"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    out = []
    for r, row in enumerate(cells):
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def format_rows(rows: Sequence[Mapping[str, object]], columns: Sequence[str]) -> str:
    """Table from dict rows, selecting and ordering ``columns``."""
    return format_table(columns, [[row.get(c, "") for c in columns] for row in rows])


def ascii_chart(
    xs: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
) -> str:
    """A minimal multi-series scatter chart in text.

    Each series gets a marker (its name's first letter); x positions are
    spread by rank (suitable for power-of-two sweeps), y linearly or
    logarithmically.
    """
    if not xs:
        raise ValueError("need at least one x value")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ValueError(f"series {name!r} length mismatch")

    def transform(v: float) -> float:
        if log_y:
            if v <= 0:
                raise ValueError("log scale needs positive values")
            return math.log10(v)
        return v

    all_y = [transform(v) for ys in series.values() for v in ys]
    lo, hi = min(all_y), max(all_y)
    span = (hi - lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, ys in series.items():
        marker = name[0]
        for i, y in enumerate(ys):
            col = round(i * (width - 1) / max(1, len(xs) - 1))
            row = height - 1 - round((transform(y) - lo) / span * (height - 1))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top = f"{10**hi:.3g}" if log_y else f"{hi:.3g}"
    bottom = f"{10**lo:.3g}" if log_y else f"{lo:.3g}"
    lines.append(f"y max = {top}")
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"y min = {bottom};  x: {xs[0]:g} .. {xs[-1]:g}")
    legend = ", ".join(f"{name[0]} = {name}" for name in series)
    lines.append("legend: " + legend)
    return "\n".join(lines)
