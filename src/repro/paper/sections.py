"""The paper-section registry: every regenerable artifact, one entry each.

``PAPER_SECTIONS`` maps a section id (``"table-1a"``, ``"figures"``,
``"section-4"``, ...) to a :class:`SectionSpec` describing one artifact of
Szymanski (ICPP 1992) — which EXPERIMENTS.md entries it covers, which
campaign tasks produce its data, and how those task payloads render into
tables (markdown + machine-readable JSON) and figures (ASCII text).  The
registry is the single source of truth for the ``repro paper`` pipeline:

* :func:`paper_campaign` expands the selected sections into one
  :class:`~repro.campaign.spec.CampaignSpec` (shared tasks deduplicated),
  so regeneration is resumable and content-addressed like any campaign;
* :mod:`repro.paper.runner` executes that campaign and writes the rendered
  artifacts under ``results/paper/<section>/{tables,figures}``;
* :mod:`repro.paper.golden` diffs regenerated tables cell-by-cell against
  the checked-in goldens under ``results/paper/golden/<profile>/``;
* ``tools/check_docs.py`` renders the section ↔ experiment mapping into
  docs/API.md and fails CI when it drifts.

Two :class:`PaperProfile`\\ s are registered: ``full`` regenerates the
paper's own numbers (N = 4096 and the 4^k sweep up to ~1M PEs), ``smoke``
is the small-N grid CI runs on every push.  Profile *parameters* (not just
the profile name) are part of each task's content hash, so editing a
profile re-keys its tasks instead of serving stale cached payloads.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..campaign.spec import TaskSpec

__all__ = [
    "SECTION_SCHEMA_VERSION",
    "PaperProfile",
    "PROFILES",
    "Table",
    "Figure",
    "SectionArtifacts",
    "SectionSpec",
    "PAPER_SECTIONS",
    "resolve_sections",
    "paper_campaign",
    "run_section_task",
    "section_command",
    "list_sections",
]

#: Bumping this re-keys every registry-computed section task, forcing
#: regeneration even for unchanged (section, profile) pairs — the paper
#: pipeline's analogue of ``PLAN_SCHEMA_VERSION``.
SECTION_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PaperProfile:
    """One regeneration grid: the concrete sizes each section computes at.

    ``full`` reproduces the paper's own machine (N = 4096); ``smoke`` is a
    seconds-class grid for CI and local iteration.  Every field lands in
    the campaign task parameters, so two profiles never share cached
    payloads and an edited profile never serves stale ones.
    """

    name: str
    num_pes: int  # N for the tables and Section IV/V numbers
    sweep_exponents: tuple[int, ...]  # 4^k machine sizes for the E11 sweep
    routed_n: int  # node count for the adaptively-routed contrast
    omega_ports: int  # Omega-network size for the Section I contrast
    universality_pes: int  # machine size for measured random routing
    figure_side: int  # hypermesh side for the ASCII figures

    def to_params(self) -> dict:
        return asdict(self)

    @classmethod
    def from_params(cls, params: Mapping) -> "PaperProfile":
        return cls(
            name=str(params["name"]),
            num_pes=int(params["num_pes"]),
            sweep_exponents=tuple(int(k) for k in params["sweep_exponents"]),
            routed_n=int(params["routed_n"]),
            omega_ports=int(params["omega_ports"]),
            universality_pes=int(params["universality_pes"]),
            figure_side=int(params["figure_side"]),
        )


PROFILES: dict[str, PaperProfile] = {
    "full": PaperProfile(
        name="full",
        num_pes=4096,
        sweep_exponents=tuple(range(2, 11)),
        routed_n=1024,
        omega_ports=64,
        universality_pes=256,
        figure_side=4,
    ),
    "smoke": PaperProfile(
        name="smoke",
        num_pes=256,
        sweep_exponents=tuple(range(2, 6)),
        routed_n=64,
        omega_ports=16,
        universality_pes=64,
        figure_side=4,
    ),
}


def _fmt_cell(value: object) -> str:
    """One markdown table cell: floats trimmed, booleans spelled out."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


@dataclass(frozen=True)
class Table:
    """One regenerated table: named columns over JSON-serializable rows.

    The JSON form (``to_dict``) is the golden-checked artifact; the
    markdown form is the human-facing rendering of exactly the same cells.
    """

    name: str
    title: str
    columns: tuple[str, ...]
    rows: tuple[Mapping, ...]

    def to_dict(self) -> dict:
        return {
            "table": self.name,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(r) for r in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Table":
        return cls(
            name=data["table"],
            title=data.get("title", data["table"]),
            columns=tuple(data["columns"]),
            rows=tuple(dict(r) for r in data["rows"]),
        )

    def to_markdown(self) -> str:
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "---|" * len(self.columns))
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(_fmt_cell(row.get(c, "")) for c in self.columns)
                + " |"
            )
        return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class Figure:
    """One regenerated figure: a titled block of ASCII text."""

    name: str
    title: str
    text: str

    def to_dict(self) -> dict:
        return {"figure": self.name, "title": self.title, "text": self.text}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Figure":
        return cls(
            name=data["figure"], title=data.get("title", data["figure"]),
            text=data["text"],
        )

    def render(self) -> str:
        return f"== {self.title} ==\n{self.text}\n"


@dataclass(frozen=True)
class SectionArtifacts:
    """Everything one section regenerates."""

    tables: tuple[Table, ...] = ()
    figures: tuple[Figure, ...] = ()

    def to_dict(self) -> dict:
        return {
            "tables": [t.to_dict() for t in self.tables],
            "figures": [f.to_dict() for f in self.figures],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SectionArtifacts":
        return cls(
            tables=tuple(Table.from_dict(t) for t in data.get("tables", ())),
            figures=tuple(Figure.from_dict(f) for f in data.get("figures", ())),
        )


# ---------------------------------------------------------------------------
# Section compute functions.  Each takes a profile and returns artifacts;
# registry-computed sections run inside campaign workers via
# run_section_task, grid sections assemble payloads of existing entry
# points (run_routing_task, sweep_task), and local sections render in the
# runner process from committed BENCH_* files.
# ---------------------------------------------------------------------------


def _compute_table_1a(profile: PaperProfile) -> SectionArtifacts:
    from ..models.tables import table_1a

    rows = table_1a(profile.num_pes)
    return SectionArtifacts(tables=(Table(
        "table-1a",
        f"Table 1A — hardware complexity before normalization (N={profile.num_pes})",
        ("network", "crossbars", "crossbars_formula", "degree",
         "degree_formula", "diameter", "diameter_formula"),
        tuple(rows),
    ),))


def _compute_table_1b(profile: PaperProfile) -> SectionArtifacts:
    from ..models.tables import table_1b
    from ..viz.series import format_bandwidth

    rows = [dict(r) for r in table_1b(profile.num_pes)]
    for row in rows:
        row["link_bw_h"] = format_bandwidth(row["link_bw"])
    return SectionArtifacts(tables=(Table(
        "table-1b",
        f"Table 1B — after equal-bandwidth normalization (N={profile.num_pes})",
        ("network", "link_bw", "link_bw_h", "link_bw_formula", "diameter",
         "d_over_bw"),
        tuple(rows),
    ),))


def _compute_table_2a(profile: PaperProfile) -> SectionArtifacts:
    from ..models.tables import table_2a

    return SectionArtifacts(tables=(Table(
        "table-2a",
        f"Table 2A — N-point FFT step counts (N={profile.num_pes})",
        ("network", "bitrev_steps", "bitrev_formula", "dt_steps",
         "total_steps", "total_formula"),
        tuple(table_2a(profile.num_pes)),
    ),))


def _compute_table_2b(profile: PaperProfile) -> SectionArtifacts:
    from ..models.tables import table_2b
    from ..viz.series import format_time

    rows = [dict(r) for r in table_2b(profile.num_pes)]
    for row in rows:
        row["step_time_h"] = format_time(row["step_time"])
        row["comm_time_h"] = format_time(row["comm_time"])
    return SectionArtifacts(tables=(Table(
        "table-2b",
        f"Table 2B — FFT execution time after normalization (N={profile.num_pes})",
        ("network", "dt_steps", "steps_formula", "step_time_h", "comm_time_h",
         "time_formula"),
        tuple(rows),
    ),))


#: The case grid of the Section IV worked comparison (plus the [13]
#: bitonic cross-check the same section quotes).
_SECTION4_CASES = (
    ("IV-A", {}),
    ("IV-A no bit-reversal", {"include_bitrev": False}),
    ("IV-B 20ns lines", {"propagation_delay": 20e-9}),
)


def _compute_section_4(profile: PaperProfile) -> SectionArtifacts:
    from ..core.complexity import NetworkKind
    from ..models.speedup import bitonic_comparison, section4_comparison
    from ..viz.series import format_time

    networks = (NetworkKind.MESH_2D, NetworkKind.HYPERCUBE,
                NetworkKind.HYPERMESH_2D)
    n = profile.num_pes
    cases = [(case, section4_comparison(n, **kwargs))
             for case, kwargs in _SECTION4_CASES]
    cases.append(("bitonic sort [13]", bitonic_comparison(n)))

    time_rows = []
    speedup_rows = []
    for case, cmp_ in cases:
        for kind in networks:
            t = cmp_.times[kind]
            time_rows.append({
                "case": case,
                "network": kind.value,
                "steps": round(float(t.steps), 4),
                "per_step": format_time(t.step_time),
                "total": format_time(t.total),
            })
        speedup_rows.append({
            "case": case,
            "hypermesh_vs_mesh": round(cmp_.speedup_vs_mesh, 2),
            "hypermesh_vs_hypercube": round(cmp_.speedup_vs_hypercube, 2),
        })
    return SectionArtifacts(tables=(
        Table(
            "section-4-times",
            f"Section IV — communication time per network (N={n})",
            ("case", "network", "steps", "per_step", "total"),
            tuple(time_rows),
        ),
        Table(
            "section-4-speedups",
            f"Section IV — hypermesh speedups (N={n})",
            ("case", "hypermesh_vs_mesh", "hypermesh_vs_hypercube"),
            tuple(speedup_rows),
        ),
    ))


def _compute_section_5(profile: PaperProfile) -> SectionArtifacts:
    from ..core.complexity import NetworkKind
    from ..hardware.technology import GAAS_1992
    from ..models.bisection import bisection_bandwidth_formula, bisection_ratios
    from ..viz.series import format_bandwidth

    n = profile.num_pes
    rows = []
    for kind in (NetworkKind.MESH_2D, NetworkKind.HYPERCUBE,
                 NetworkKind.HYPERMESH_2D):
        bb = bisection_bandwidth_formula(kind, n, GAAS_1992,
                                         paper_convention=True)
        rows.append({
            "network": kind.value,
            "crossing_channels": round(float(bb.channels), 4),
            "per_channel": format_bandwidth(bb.per_channel),
            "bisection_bw": format_bandwidth(bb.total),
        })
    r_mesh, r_hc = bisection_ratios(n, GAAS_1992)
    ratio_rows = (
        {"ratio": "hypermesh / mesh", "value": round(r_mesh, 4),
         "growth": "O(sqrt N): 2.5*sqrt(N)"},
        {"ratio": "hypermesh / hypercube", "value": round(r_hc, 4),
         "growth": "O(log N): log2(N)"},
    )
    return SectionArtifacts(tables=(
        Table(
            "section-5-bisection",
            f"Section V — bisection bandwidth, paper convention (N={n})",
            ("network", "crossing_channels", "per_channel", "bisection_bw"),
            tuple(rows),
        ),
        Table(
            "section-5-ratios",
            f"Section V — bisection ratios (N={n})",
            ("ratio", "value", "growth"),
            ratio_rows,
        ),
    ))


def _compute_figures(profile: PaperProfile) -> SectionArtifacts:
    from ..viz.diagrams import (
        render_butterfly_graph,
        render_hypermesh_2d,
        render_pe_node,
    )

    side = profile.figure_side
    points = 1 << min(4, (side * side).bit_length() - 1)
    return SectionArtifacts(figures=(
        Figure("fig-1", f"Fig. 1 — 2D hypermesh (side {side})",
               render_hypermesh_2d(side)),
        Figure("fig-2", "Fig. 2 — PE-node (one port per dimension)",
               render_pe_node(2)),
        Figure("fig-3", f"Fig. 3 — FFT data-flow graph ({points} points)",
               render_butterfly_graph(points)),
    ))


def _compute_omega(profile: PaperProfile) -> SectionArtifacts:
    import numpy as np

    from ..networks import OmegaNetwork
    from ..routing import (
        Permutation,
        bit_reversal,
        butterfly_exchange,
        route_permutation_3step,
    )

    n = profile.omega_ports
    om = OmegaNetwork(n)
    width = n.bit_length() - 1
    admissible = all(
        om.is_admissible(butterfly_exchange(n, b)) for b in range(width)
    )
    rev = bit_reversal(n)
    rng = np.random.default_rng(0)
    random_passes = [om.passes_required(Permutation.random(n, rng))
                     for _ in range(5)]
    rows = (
        {"permutation": "every FFT butterfly exchange",
         "omega_passes": 1 if admissible else "> 1",
         "hypermesh_steps": 1,
         "note": "admissible" if admissible else "inadmissible"},
        {"permutation": "bit reversal",
         "omega_passes": om.passes_required(rev),
         "hypermesh_steps": route_permutation_3step(rev).num_steps,
         "note": "Clos/Slepian-Duguid"},
        {"permutation": "5 random permutations (seed 0)",
         "omega_passes": str(random_passes),
         "hypermesh_steps": "<= 3 each",
         "note": "rearrangeability"},
    )
    return SectionArtifacts(tables=(Table(
        "omega-contrast",
        f"Section I — Omega network vs 2D hypermesh (N={n})",
        ("permutation", "omega_passes", "hypermesh_steps", "note"),
        rows,
    ),))


def _compute_universality(profile: PaperProfile) -> SectionArtifacts:
    from ..models.universality import (
        empirical_random_routing_steps,
        slowdown_table,
    )

    rows = [
        {
            "num_pes": r.num_pes,
            "hypercube_slowdown": round(r.hypercube, 2),
            "hypermesh_slowdown": round(r.hypermesh, 2),
            "advantage": round(r.advantage, 2),
        }
        for r in slowdown_table([2**k for k in (6, 8, 10, 12, 16, 20)])
    ]
    measured = empirical_random_routing_steps(
        profile.universality_pes, trials=3, seed=0
    )
    measured_rows = ({
        "num_pes": profile.universality_pes,
        "hypercube_mean_steps": round(measured["hypercube_mean_steps"], 2),
        "hypermesh_mean_steps": round(measured["hypermesh_mean_steps"], 2),
    },)
    return SectionArtifacts(tables=(
        Table(
            "universality-slowdowns",
            "Section I — universal-simulation slowdowns ([15] vs [13])",
            ("num_pes", "hypercube_slowdown", "hypermesh_slowdown",
             "advantage"),
            tuple(rows),
        ),
        Table(
            "universality-measured",
            f"Section I — measured random-permutation routing "
            f"(N={profile.universality_pes}, 3 seeded trials)",
            ("num_pes", "hypercube_mean_steps", "hypermesh_mean_steps"),
            measured_rows,
        ),
    ))


def _hypermesh_shapes(num_pes: int) -> list[tuple[int, int]]:
    """The power-of-two (base, dims) factorizations with 2-4 dimensions —
    for 4096 exactly the paper's ``8^4, 16^3 and 64^2`` remark."""
    log_n = num_pes.bit_length() - 1
    shapes = []
    for dims in (4, 3, 2):
        if log_n % dims == 0:
            shapes.append((1 << (log_n // dims), dims))
    return shapes


def _compute_shapes(profile: PaperProfile) -> SectionArtifacts:
    from ..core import map_fft
    from ..hardware import link_bandwidth
    from ..hardware.technology import GAAS_1992
    from ..networks import Hypermesh, Hypermesh2D
    from ..viz.series import format_time

    rows = []
    for base, dims in _hypermesh_shapes(profile.num_pes):
        hm = Hypermesh2D(base) if dims == 2 else Hypermesh(base, dims)
        mapping = map_fft(hm)
        step = GAAS_1992.packet_bits / link_bandwidth(hm, GAAS_1992)
        rows.append({
            "shape": f"{base}^{dims}",
            "butterfly_steps": mapping.butterfly_steps,
            "bitrev_steps": mapping.bitrev_steps,
            "total_steps": mapping.total_steps,
            "per_step": format_time(step),
            "comm_time": format_time(mapping.total_steps * step),
        })
    return SectionArtifacts(tables=(Table(
        "hypermesh-shapes",
        f"Section IV — hypermesh shape choice ({profile.num_pes} PEs)",
        ("shape", "butterfly_steps", "bitrev_steps", "total_steps",
         "per_step", "comm_time"),
        tuple(rows),
    ),))


# -- grid sections: tasks are existing campaign entry points ----------------


_ROUTED_TOPOLOGIES = ("mesh2d", "hypercube", "hypermesh2d")


def _routed_tasks(profile: PaperProfile) -> tuple[TaskSpec, ...]:
    return tuple(
        TaskSpec(
            entry="repro.sim.task:run_routing_task",
            params={
                "topology": topology,
                "n": profile.routed_n,
                "workload": "bit-reversal",
                "seed": 99,
                "arbitration": "overtaking",
                "plan_cache": "disk",
            },
            label=f"routed-{topology}-n{profile.routed_n}",
        )
        for topology in _ROUTED_TOPOLOGIES
    )


def _routed_assemble(
    payloads: Sequence[Mapping], profile: PaperProfile
) -> SectionArtifacts:
    columns = ("topology", "n", "workload", "packets", "steps", "total_hops",
               "delivered")
    rows = tuple(
        {c: p[c] for c in columns}
        for p in sorted(payloads, key=lambda p: str(p["topology"]))
    )
    return SectionArtifacts(tables=(Table(
        "routed-steps",
        f"Adaptive routing contrast — bit reversal, measured steps "
        f"(N={profile.routed_n}, plan-cached)",
        columns,
        rows,
    ),))


_COMM_AVOIDING_TOPOLOGIES = ("mesh2d", "torus2d", "hypercube", "hypermesh2d")


def _comm_avoiding_tasks(profile: PaperProfile) -> tuple[TaskSpec, ...]:
    n = profile.routed_n
    tasks = []
    for topology in _COMM_AVOIDING_TOPOLOGIES:
        for method in ("systolic", "hyper-systolic"):
            tasks.append(
                TaskSpec(
                    entry="repro.algos.hypersystolic:run_commavoiding_task",
                    params={
                        "topology": topology,
                        "n": n,
                        "method": method,
                        "seed": 99,
                    },
                    label=f"{method}-{topology}-n{n}",
                )
            )
        tasks.append(
            TaskSpec(
                entry="repro.fft.ape:run_ape_fft_task",
                params={"topology": topology, "n": n, "seed": 99},
                label=f"ape-fft-{topology}-n{n}",
            )
        )
    return tuple(tasks)


def _comm_avoiding_assemble(
    payloads: Sequence[Mapping], profile: PaperProfile
) -> SectionArtifacts:
    order = {"systolic": 0, "hyper-systolic": 1, "ape-fft": 2}
    rows = tuple(
        {
            "topology": p["topology"],
            "n": p["n"],
            "workload": p["method"],
            "routed_shifts": p.get("routed_shifts", "-"),
            "steps": p["steps"],
            "bound": p["bound"],
            "ratio": round(float(p["bound_ratio"]), 2),
            "certified": bool(p["certified"]),
        }
        for p in sorted(
            payloads,
            key=lambda p: (str(p["topology"]), order[str(p["method"])]),
        )
    )
    return SectionArtifacts(tables=(Table(
        "comm-avoiding",
        f"Communication-avoiding workloads — hyper-systolic convolution "
        f"(sqrt-N taps) and the APE four-step FFT, certified against "
        f"analytic floors (N={profile.routed_n})",
        ("topology", "n", "workload", "routed_shifts", "steps", "bound",
         "ratio", "certified"),
        rows,
    ),))


def _sweep_tasks(profile: PaperProfile) -> tuple[TaskSpec, ...]:
    return tuple(
        TaskSpec(
            entry="repro.models.speedup:sweep_task",
            params={"n": 4**k},
            label=f"sweep-n{4**k}",
        )
        for k in profile.sweep_exponents
    )


def _sweep_assemble(
    payloads: Sequence[Mapping], profile: PaperProfile
) -> SectionArtifacts:
    from ..viz.series import ascii_chart

    ordered = sorted(payloads, key=lambda p: int(p["n"]))
    rows = tuple(
        {
            "n": int(p["n"]),
            "vs_mesh": round(float(p["vs_mesh"]), 2),
            "vs_hypercube": round(float(p["vs_hypercube"]), 2),
        }
        for p in ordered
    )
    chart = ascii_chart(
        [float(r["n"]) for r in rows],
        {
            "mesh speedup ~ sqrt(N)/log N": [r["vs_mesh"] for r in rows],
            "cube speedup ~ log N": [r["vs_hypercube"] for r in rows],
        },
        log_y=True,
        title="hypermesh FFT speedup vs machine size (log y; x = 4^k)",
    )
    return SectionArtifacts(
        tables=(Table(
            "speedup-sweep",
            "Hypermesh FFT speedup vs machine size (paper step convention)",
            ("n", "vs_mesh", "vs_hypercube"),
            rows,
        ),),
        figures=(Figure("speedup-chart",
                        "Speedup growth — O(sqrt N/log N) and O(log N)",
                        chart),),
    )


# -- local section: trajectory charts over the committed BENCH_* artifacts --


def _bench_series_chart(path: Path, x_key: str, y_key: str, group_key: str,
                        title: str) -> Figure | None:
    from ..viz.series import ascii_chart

    try:
        rows = json.loads(path.read_text())["rows"]
    except (OSError, KeyError, json.JSONDecodeError):
        return None
    groups: dict[str, dict[float, list[float]]] = {}
    for row in rows:
        if row.get(y_key) is None:
            continue
        by_x = groups.setdefault(str(row[group_key]), {})
        by_x.setdefault(float(row[x_key]), []).append(float(row[y_key]))
    if not groups:
        return None
    xs = sorted({x for by_x in groups.values() for x in by_x})
    series = {}
    for name, by_x in sorted(groups.items()):
        # Mean over rows sharing an x cell; flat-fill gaps with the last
        # seen value so every series spans the common axis.
        values, last = [], None
        for x in xs:
            if x in by_x:
                last = sum(by_x[x]) / len(by_x[x])
            values.append(last if last is not None else 1.0)
        series[name] = values
    return Figure(
        path.stem.lower().replace("_", "-"),
        title,
        ascii_chart(xs, series, log_y=True, title=f"{title} (log y)"),
    )


def _compute_bench_trajectories(profile: PaperProfile) -> SectionArtifacts:
    """Charts over the committed ``BENCH_*.json`` trajectory artifacts.

    Host-timing artifacts are not golden-checked (they measure this
    machine, not the paper); a missing artifact renders a placeholder so
    the section degrades instead of failing outside the repo root.
    """
    from ..viz.series import format_table

    bench_dir = Path.cwd()
    figures: list[Figure] = []
    specs = (
        ("BENCH_engine.json", "n", "speedup", "backend",
         "Engine speedup vs seed loop, by backend"),
        ("BENCH_plancache.json", "n", "replay_speedup", "topology",
         "Plan-cache warm replay speedup, by topology"),
        ("BENCH_faults.json", "amount", "steps_vs_fault_free", "topology",
         "Degraded-mode step overhead vs fault severity"),
    )
    for filename, x_key, y_key, group_key, title in specs:
        fig = _bench_series_chart(bench_dir / filename, x_key, y_key,
                                  group_key, title)
        if fig is not None:
            figures.append(fig)
    service = bench_dir / "BENCH_service.json"
    try:
        loads = json.loads(service.read_text())["loads"]
        rows = [
            [name, load["count"], load["p50_ms"], load["p95_ms"],
             load["p99_ms"]]
            for name, load in loads.items()
        ]
        figures.append(Figure(
            "bench-service",
            "Serving latency percentiles (ms) per path",
            format_table(["load", "count", "p50", "p95", "p99"], rows),
        ))
    except (OSError, KeyError, json.JSONDecodeError):
        pass
    if not figures:
        figures.append(Figure(
            "bench-missing",
            "BENCH_* trajectory artifacts",
            "no BENCH_*.json artifacts found in the working directory;\n"
            "run from the repository root (or regenerate them via the\n"
            "benchmarks/ scripts) to chart the committed trajectories",
        ))
    return SectionArtifacts(figures=tuple(figures))


# ---------------------------------------------------------------------------
# The registry.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SectionSpec:
    """One paper artifact: its experiments, producing tasks, and renderers.

    Exactly one production mode applies:

    * registry-computed (default): one ``run_section_task`` campaign task
      executes :attr:`compute` in a worker, and the payload *is* the
      rendered artifact set;
    * grid (``task_grid``/``assemble`` set): the section fans out over
      existing campaign entry points and assembles their payloads;
    * local (``local=True``): rendered in the runner process (used for the
      BENCH_* charts, which read committed files and are never cached).
    """

    section: str
    title: str
    experiments: tuple[str, ...]
    description: str
    golden: bool = True
    compute: Callable[[PaperProfile], SectionArtifacts] | None = None
    task_grid: Callable[[PaperProfile], tuple[TaskSpec, ...]] | None = None
    assemble: Callable[[Sequence, PaperProfile], SectionArtifacts] | None = None
    local: bool = False

    def __post_init__(self) -> None:
        grid = self.task_grid is not None or self.assemble is not None
        if grid and (self.task_grid is None or self.assemble is None):
            raise ValueError(
                f"section {self.section!r}: task_grid and assemble "
                "must be provided together"
            )
        if self.local and (grid or self.compute is None):
            raise ValueError(
                f"section {self.section!r}: local sections need compute only"
            )
        if not self.local and not grid and self.compute is None:
            raise ValueError(f"section {self.section!r} has no producer")

    def tasks(self, profile: PaperProfile) -> tuple[TaskSpec, ...]:
        """The campaign tasks that produce this section's data."""
        if self.local:
            return ()
        if self.task_grid is not None:
            return self.task_grid(profile)
        return (TaskSpec(
            entry="repro.paper.sections:run_section_task",
            params={
                "section": self.section,
                "schema": SECTION_SCHEMA_VERSION,
                "profile": profile.to_params(),
            },
            label=f"{self.section}@{profile.name}",
        ),)

    def render(
        self, payloads: Sequence, profile: PaperProfile
    ) -> SectionArtifacts:
        """Turn the section's task payloads into tables and figures."""
        if self.local:
            assert self.compute is not None
            return self.compute(profile)
        if self.assemble is not None:
            return self.assemble(payloads, profile)
        return SectionArtifacts.from_dict(payloads[0])


def _registry(*specs: SectionSpec) -> dict[str, SectionSpec]:
    out: dict[str, SectionSpec] = {}
    for spec in specs:
        if spec.section in out:
            raise ValueError(f"duplicate section id {spec.section!r}")
        out[spec.section] = spec
    return out


PAPER_SECTIONS: dict[str, SectionSpec] = _registry(
    SectionSpec(
        "table-1a", "Table 1A — hardware complexity", ("E1",),
        "crossbar counts, degrees and diameters before normalization",
        compute=_compute_table_1a,
    ),
    SectionSpec(
        "table-1b", "Table 1B — normalized links", ("E2",),
        "link bandwidth, diameter and D/BW after the equal-bandwidth "
        "normalization",
        compute=_compute_table_1b,
    ),
    SectionSpec(
        "table-2a", "Table 2A — FFT step counts", ("E3",),
        "bit-reversal, data-transfer and total step counts per network",
        compute=_compute_table_2a,
    ),
    SectionSpec(
        "table-2b", "Table 2B — FFT communication time", ("E4",),
        "step asymptotics and concrete communication times",
        compute=_compute_table_2b,
    ),
    SectionSpec(
        "section-4", "Section IV — worked comparison", ("E5", "E6", "E10"),
        "equations (2)-(4), the headline speedups, the 20 ns line-delay "
        "variant and the [13] bitonic cross-check",
        compute=_compute_section_4,
    ),
    SectionSpec(
        "section-5", "Section V — bisection bandwidth", ("E7",),
        "bisection bandwidths and the O(sqrt N)/O(log N) ratios",
        compute=_compute_section_5,
    ),
    SectionSpec(
        "figures", "Figures 1-3", ("E8", "E9"),
        "the 2D hypermesh, its PE-node, and the FFT data-flow graph as "
        "ASCII renderings",
        golden=False,  # structural figures; invariants are asserted in tests
        compute=_compute_figures,
    ),
    SectionSpec(
        "sweep", "Speedup vs machine size", ("E11",),
        "the asymptotic sweep behind the headline O(sqrt N/log N) and "
        "O(log N) claims, fanned out one machine size per campaign task",
        task_grid=_sweep_tasks,
        assemble=_sweep_assemble,
    ),
    SectionSpec(
        "omega", "Omega-network contrast", ("E14",),
        "Section I's multistage contrast: passes through a real Omega "
        "network vs hypermesh steps",
        compute=_compute_omega,
    ),
    SectionSpec(
        "universality", "Universality slowdowns", ("E16",),
        "the [15] vs [13] simulation slowdowns, charted and measured on "
        "seeded random permutations",
        compute=_compute_universality,
    ),
    SectionSpec(
        "shapes", "Hypermesh shape choice", ("E19",),
        "the 8^4 / 16^3 / 64^2 remark of Section IV, executed",
        compute=_compute_shapes,
    ),
    SectionSpec(
        "routed-steps", "Adaptive routing contrast", ("E22",),
        "measured engine steps for the bit reversal per topology, routed "
        "through the plan cache (warm on reruns)",
        task_grid=_routed_tasks,
        assemble=_routed_assemble,
    ),
    SectionSpec(
        "comm-avoiding", "Communication-avoiding workloads", ("E25",),
        "Galli's hyper-systolic convolution vs the systolic baseline and "
        "the APE four-step FFT, every measured step count certified "
        "against its repro.bounds analytic floor",
        task_grid=_comm_avoiding_tasks,
        assemble=_comm_avoiding_assemble,
    ),
    SectionSpec(
        "bench-trajectories", "BENCH_* trajectory charts",
        ("E20", "E23", "E24"),
        "ASCII charts over the committed BENCH_* artifacts (engine "
        "backends, plan cache, faults, serving latency); host timings, "
        "so rendered locally and never golden-checked",
        golden=False,
        compute=_compute_bench_trajectories,
        local=True,
    ),
)


def resolve_sections(names: Sequence[str] | None) -> list[SectionSpec]:
    """Section specs for ``names`` (registry order), or all of them.

    Raises ``ValueError`` naming the first unknown section.
    """
    if names is None:
        return list(PAPER_SECTIONS.values())
    wanted = set(names)
    for name in names:
        if name not in PAPER_SECTIONS:
            raise ValueError(
                f"unknown paper section {name!r}; known: "
                f"{sorted(PAPER_SECTIONS)}"
            )
    return [s for s in PAPER_SECTIONS.values() if s.section in wanted]


def paper_campaign(
    profile: str | PaperProfile = "full",
    sections: Sequence[str] | None = None,
):
    """The selected sections as one deduplicated, resumable campaign.

    Named ``paper`` (full profile) / ``paper-<name>`` otherwise, so reruns
    share the same content-addressed store.  Tasks shared by several
    sections appear once.
    """
    from ..campaign.spec import CampaignSpec

    if isinstance(profile, str):
        if profile not in PROFILES:
            raise KeyError(
                f"unknown paper profile {profile!r}; known: {sorted(PROFILES)}"
            )
        profile = PROFILES[profile]
    tasks: dict[str, TaskSpec] = {}
    for spec in resolve_sections(sections):
        for task in spec.tasks(profile):
            tasks.setdefault(task.task_hash, task)
    name = "paper" if profile.name == "full" else f"paper-{profile.name}"
    return CampaignSpec(
        name,
        tuple(tasks.values()),
        meta={
            "description": "regenerate every paper artifact "
            f"({profile.name} profile) for `repro paper`",
            "profile": profile.name,
        },
    )


def run_section_task(params: dict) -> dict:
    """Campaign entry point (``repro.paper.sections:run_section_task``).

    Computes one registry section at the profile *parameters* embedded in
    the task (so the content hash covers the actual sizes, not just a
    profile name) and returns the rendered artifacts as a JSON dict.
    """
    spec = PAPER_SECTIONS[params["section"]]
    if spec.compute is None or spec.local:
        raise ValueError(
            f"section {spec.section!r} is not registry-computed"
        )
    profile = PaperProfile.from_params(params["profile"])
    return spec.compute(profile).to_dict()


def section_command(spec: SectionSpec) -> str:
    """The exact CLI invocation that regenerates one section."""
    return f"python -m repro paper --sections {spec.section}"


def list_sections() -> list[tuple[str, str, str]]:
    """(id, experiments, title) triples for the CLI listing."""
    return [
        (spec.section, ",".join(spec.experiments), spec.title)
        for spec in PAPER_SECTIONS.values()
    ]
