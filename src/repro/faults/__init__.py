"""Fault injection and degraded-mode routing.

The paper assumes a fault-free machine: every mesh link, hypercube channel,
and hypermesh net is always up, so its complexity claims say nothing about
what a real build does when a crossbar pin dies.  Wafer-scale FFT engines
ship with faulty cores routed around, and degraded-mode communication is
where a reproduction earns production credibility — this package makes the
word-level simulator answer those questions deterministically:

* :class:`FaultModel` — a seeded, declarative description of what is broken:
  links down, nodes down, hypermesh nets down or *degraded* (serialized to
  one packet per step), a sampled fraction of failed links, and an
  intermittent per-transmission drop probability with a retry budget.
  Everything is a pure function of the model's seed, so two runs with the
  same model and demands are bit-identical.
* :func:`resolve_faults` / :class:`ResolvedFaults` — the model pinned to one
  concrete topology: exact down-link/net sets (including the sampled
  fraction) plus the surviving adjacency.
* :class:`FaultAwareRouter` — wraps any deterministic router; routes on the
  surviving graph with minimal detours (BFS next-hop tables per
  destination) and raises :class:`UnroutableError` when a destination is
  partitioned away.
* The engine entry points (:func:`repro.sim.route_permutation` /
  :func:`repro.sim.route_demands`) accept ``fault_model=`` and gain
  retry/timeout/drop semantics with explicit ``delivered`` / ``dropped`` /
  ``retried`` accounting on :class:`repro.sim.RoutingStats`, surfaced as
  ``fault.*`` events through :mod:`repro.obs`.

A fault model that is attached but has nothing enabled is contractually a
**no-op**: the engine takes its fault-free fast path and produces
bit-identical schedules (the differential fuzz suite enforces this).
Active fault configurations participate in the routing plan-cache key, so
a faulted run can never replay a fault-free plan or vice versa.

Semantics, rerouting rules and the accounting contract are documented in
``docs/FAULTS.md``.
"""

from .model import FaultModel, ResolvedFaults, UnroutableError, resolve_faults
from .routing import FaultAwareRouter, fault_aware_router

__all__ = [
    "FaultModel",
    "ResolvedFaults",
    "UnroutableError",
    "resolve_faults",
    "FaultAwareRouter",
    "fault_aware_router",
]
