"""Lowering logical permutations to per-topology communication schedules.

The FFT flow graph asks for two kinds of communication:

* **butterfly exchanges** — packet ``i`` pairs with ``i ^ 2**bit`` (one per
  stage), and
* the closing **bit-reversal permutation**.

Each target network realizes these differently, and the *how* is exactly the
content of the paper's Section III:

==============  =======================================  ====================
network         butterfly exchange on ``bit``            steps
==============  =======================================  ====================
hypercube       neighbour swap along dimension ``bit``   1
2D hypermesh    one net permutation (row or column)      1
2D mesh         lock-step shift of distance ``2**k``     ``2**k`` (k = bit
                within the row / column                  position inside the
                                                         row/column field)
==============  =======================================  ====================

All builders return a :class:`~repro.sim.schedule.CommSchedule`, so the same
validator certifies every count the tables quote.
"""

from __future__ import annotations

from ..networks.addressing import ilog2
from ..networks.base import Topology
from ..networks.hypercube import Hypercube
from ..networks.hypermesh import Hypermesh, Hypermesh2D
from ..networks.mesh import Mesh2D
from ..networks.torus import Torus2D
from ..routing.families import butterfly_exchange
from ..sim.schedule import CommSchedule

__all__ = [
    "hypercube_exchange_schedule",
    "hypercube_bit_swap_schedule",
    "hypermesh_exchange_schedule",
    "general_hypermesh_exchange_schedule",
    "mesh_exchange_schedule",
    "butterfly_exchange_schedule",
    "require_square_power_of_two",
]


def require_square_power_of_two(side: int) -> int:
    """Bits per row/column coordinate for a power-of-two ``side``.

    The row-major FFT embedding needs the node index to split into a row
    field and a column field, i.e. ``side = 2**half``.
    """
    return ilog2(side)


def hypercube_exchange_schedule(hypercube: Hypercube, bit: int) -> CommSchedule:
    """One-step butterfly exchange: every packet crosses dimension ``bit``.

    Conflict-free by construction: each node sends exactly one packet on its
    dimension-``bit`` link and receives exactly one.
    """
    n = hypercube.num_nodes
    perm = butterfly_exchange(n, bit)
    moves = {pid: pid ^ (1 << bit) for pid in range(n)}
    return CommSchedule(topology=hypercube, logical=perm, steps=(moves,))


def hypercube_bit_swap_schedule(hypercube: Hypercube, i: int, j: int) -> CommSchedule:
    """Exchange address bits ``i`` and ``j`` across all packets in 2 steps.

    Packets whose bits ``i`` and ``j`` agree stay put; the rest are at
    Hamming distance 2 from their destinations and route dimension ``i``
    then dimension ``j``.  Both steps are link-conflict-free (each node sends
    at most one packet per dimension per step) at the cost of buffering two
    packets at the intermediate node — allowed by the word model.

    This is the constructive realization of the paper's "bit-reversal needs
    exactly ``log N`` steps on the hypercube": ``floor(log N / 2)`` bit swaps
    of 2 steps each.
    """
    if i == j:
        raise ValueError("bit swap needs two distinct bits")
    n = hypercube.num_nodes
    width = hypercube.dimension
    if not (0 <= i < width and 0 <= j < width):
        raise ValueError(f"bits ({i}, {j}) out of range [0, {width})")
    movers = [
        pid for pid in range(n) if ((pid >> i) & 1) != ((pid >> j) & 1)
    ]
    step1 = {pid: pid ^ (1 << i) for pid in movers}
    step2 = {pid: pid ^ (1 << i) ^ (1 << j) for pid in movers}
    dest = [pid if pid not in step2 else step2[pid] for pid in range(n)]
    from ..routing.permutation import Permutation

    perm = Permutation(dest)
    return CommSchedule(topology=hypercube, logical=perm, steps=(step1, step2))


def hypermesh_exchange_schedule(hypermesh: Hypermesh2D, bit: int) -> CommSchedule:
    """One-step butterfly exchange on the 2D hypermesh.

    With ``side = 2**half``, bit positions ``< half`` live in the column
    digit and positions ``>= half`` in the row digit, so every partner pair
    shares a row net or a column net respectively; each net absorbs the whole
    exchange as a single permutation of its members.
    """
    side = hypermesh.side
    half = require_square_power_of_two(side)
    n = hypermesh.num_nodes
    if not 0 <= bit < 2 * half:
        raise ValueError(f"bit {bit} out of range [0, {2 * half})")
    perm = butterfly_exchange(n, bit)
    moves = {pid: pid ^ (1 << bit) for pid in range(n)}
    return CommSchedule(topology=hypermesh, logical=perm, steps=(moves,))


def general_hypermesh_exchange_schedule(
    hypermesh: Hypermesh, bit: int
) -> CommSchedule:
    """One-step butterfly exchange on any power-of-two-base hypermesh.

    With base ``b = 2**k``, address bit ``bit`` lives inside digit
    ``dims - 1 - bit // k`` (MSD-first digits), so every partner pair shares
    the net of that dimension and the exchange is a single net permutation —
    the generalization behind the paper's remark that "a 8^4, 16^3 and 64^2
    hypermesh can all interconnect 4K Processors".
    """
    k = ilog2(hypermesh.base)  # bits per digit; raises for non-2^k bases
    n = hypermesh.num_nodes
    width = k * hypermesh.dims
    if not 0 <= bit < width:
        raise ValueError(f"bit {bit} out of range [0, {width})")
    perm = butterfly_exchange(n, bit)
    moves = {pid: pid ^ (1 << bit) for pid in range(n)}
    return CommSchedule(topology=hypermesh, logical=perm, steps=(moves,))


def mesh_exchange_schedule(mesh: Mesh2D | Torus2D, bit: int) -> CommSchedule:
    """Butterfly exchange on the row-major 2D mesh (or torus).

    The exchange on bit ``k`` of the column field is a lock-step horizontal
    shift of distance ``2**k`` (both directions at once); row-field bits
    shift vertically.  Every packet advances one hop per step, so the
    schedule takes exactly ``2**k`` steps and every directed link carries at
    most one packet per step.  (Wrap-around links, when present, are not
    needed: partners always lie within the same row/column segment.)
    """
    side = mesh.side
    half = require_square_power_of_two(side)
    n = mesh.num_nodes
    if not 0 <= bit < 2 * half:
        raise ValueError(f"bit {bit} out of range [0, {2 * half})")
    perm = butterfly_exchange(n, bit)

    if bit < half:
        axis_col = True
        distance = 1 << bit
    else:
        axis_col = False
        distance = 1 << (bit - half)

    steps = []
    for t in range(1, distance + 1):
        moves: dict[int, int] = {}
        for pid in range(n):
            row, col = pid // side, pid % side
            if axis_col:
                sign = 1 if ((col >> (bit % half)) & 1) == 0 else -1
                moves[pid] = row * side + col + sign * t
            else:
                k = bit - half
                sign = 1 if ((row >> k) & 1) == 0 else -1
                moves[pid] = (row + sign * t) * side + col
        steps.append(moves)
    return CommSchedule(topology=mesh, logical=perm, steps=tuple(steps))


def butterfly_exchange_schedule(topology: Topology, bit: int) -> CommSchedule:
    """Dispatch the butterfly-exchange lowering on the topology type."""
    if isinstance(topology, Hypercube):
        return hypercube_exchange_schedule(topology, bit)
    if isinstance(topology, Hypermesh2D):
        return hypermesh_exchange_schedule(topology, bit)
    if isinstance(topology, Hypermesh):
        return general_hypermesh_exchange_schedule(topology, bit)
    if isinstance(topology, (Mesh2D, Torus2D)):
        return mesh_exchange_schedule(topology, bit)
    raise TypeError(f"no butterfly lowering for {type(topology).__name__}")
