"""Property tests for the fault-injection invariants (docs/FAULTS.md).

Three families, over random small machines and random seeded fault sets:

* **conservation** — at every committed step, ``injected == delivered +
  dropped + in-flight``: every packet is accounted for, none duplicated,
  and the engine's final counters agree with an independent replay of the
  schedule plus the ``on_fault`` event stream;
* **determinism** — a fixed (model, workload) pair reproduces the run
  bit-identically, including the sampled link-failure sets;
* **monotonicity** — structural faults never shorten any packet's path:
  per-packet hop counts equal surviving-graph distances, which are
  pointwise >= the intact distances, so total hops never decrease and
  completion time never beats the surviving-distance lower bound.  (Strict
  *step-count* monotonicity is deliberately NOT asserted: removing a link
  can reroute traffic into a less contended pattern that finishes sooner —
  a Braess-style paradox this suite found empirically on 4x4 toruses.
  docs/FAULTS.md records a concrete counterexample.)
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.faults import FaultModel, UnroutableError, resolve_faults
from repro.networks import Hypercube, Hypermesh2D, Mesh2D, Torus2D
from repro.networks.degraded import surviving_adjacency, surviving_distances
from repro.sim import route_demands

PT_TOPOLOGIES = {
    "mesh3": lambda: Mesh2D(3),
    "mesh4": lambda: Mesh2D(4),
    "torus3": lambda: Torus2D(3),
    "cube3": lambda: Hypercube(3),
}


def _links(topo):
    return sorted({(u, v) if u < v else (v, u) for u, v in topo.links()})


@st.composite
def point_to_point_case(draw, with_drops: bool):
    """(topology, permutation demands, fault model) on a link-based machine."""
    topo = PT_TOPOLOGIES[draw(st.sampled_from(sorted(PT_TOPOLOGIES)))]()
    n = topo.num_nodes
    dests = draw(st.permutations(list(range(n))))
    demands = list(zip(range(n), dests))
    links = _links(topo)
    failures = draw(
        st.sets(st.sampled_from(links), max_size=max(1, len(links) // 4))
    )
    drop_prob = 0.0
    retry_limit = None
    if with_drops:
        drop_prob = draw(st.sampled_from([0.2, 0.5, 0.8]))
        retry_limit = draw(st.sampled_from([0, 1, 3, None]))
    model = FaultModel(
        seed=draw(st.integers(0, 3)),
        link_failures=frozenset(failures),
        drop_prob=drop_prob,
        retry_limit=retry_limit,
    )
    return topo, demands, model


@st.composite
def hypermesh_case(draw):
    """(topology, permutation demands, net-fault model) on a hypermesh."""
    topo = Hypermesh2D(draw(st.sampled_from([2, 4])))
    n = topo.num_nodes
    num_nets = topo.num_nets()
    dests = draw(st.permutations(list(range(n))))
    demands = list(zip(range(n), dests))
    nets = draw(
        st.sets(st.integers(0, num_nets - 1), max_size=num_nets // 2)
    )
    down = frozenset(draw(st.sets(st.sampled_from(sorted(nets)), max_size=len(nets))) if nets else ())
    degraded = frozenset(nets) - down
    model = FaultModel(
        seed=draw(st.integers(0, 3)),
        net_failures=down,
        degraded_nets=degraded,
    )
    return topo, demands, model


def _run_accounted(topo, demands, model):
    """Route under faults and cross-check the accounting event by event.

    Returns the routed result, or None when the fault set partitions the
    demand set (which the caller treats as a discarded example).
    """
    events = []
    try:
        routed = route_demands(
            topo,
            demands,
            fault_model=model,
            on_fault=lambda *e: events.append(e),
        )
    except UnroutableError:
        return None

    npk = len(demands)
    delivered = sum(1 for s, d in demands if s == d)
    drops_at = defaultdict(int)
    retries = 0
    for kind, step, pid, node, attempts in events:
        if kind == "drop":
            drops_at[step] += 1
        else:
            retries += 1
    dropped = 0
    in_flight = npk - delivered  # identity demands may finish in 0 steps
    position = {pid: s for pid, (s, _) in enumerate(demands)}
    for step_idx, moves in enumerate(routed.steps):
        for pid, node in moves.items():
            assert node != position[pid], "a move must change position"
            position[pid] = node
            if node == demands[pid][1]:
                delivered += 1
        dropped += drops_at[step_idx]
        in_flight = npk - delivered - dropped
        assert in_flight >= 0, "conservation violated mid-run"
    assert in_flight == 0, "run ended with unaccounted packets"
    assert delivered == routed.stats.delivered
    assert dropped == routed.stats.dropped
    assert retries == routed.stats.retried
    assert delivered + dropped == npk
    return routed


@given(point_to_point_case(with_drops=True))
def test_conservation_under_link_faults_and_drops(case):
    topo, demands, model = case
    routed = _run_accounted(topo, demands, model)
    assume(routed is not None)


@given(hypermesh_case())
def test_conservation_under_net_faults(case):
    topo, demands, model = case
    routed = _run_accounted(topo, demands, model)
    assume(routed is not None)


@given(point_to_point_case(with_drops=True))
def test_fixed_seed_reproduces_bit_identically(case):
    topo, demands, model = case
    try:
        a = route_demands(topo, demands, fault_model=model)
        b = route_demands(topo, demands, fault_model=model)
    except UnroutableError:
        assume(False)
    assert list(a.steps) == list(b.steps)
    assert a.stats == b.stats
    # The sampled structural fault set is equally reproducible.
    ra = resolve_faults(model, topo)
    rb = resolve_faults(model, topo)
    assert ra.down_links == rb.down_links


@given(point_to_point_case(with_drops=False))
def test_structural_faults_never_shorten_paths(case):
    topo, demands, model = case
    assume(model.enabled)
    try:
        faulted = route_demands(topo, demands, fault_model=model)
    except UnroutableError:
        assume(False)
    baseline = route_demands(topo, demands)
    assert faulted.stats.delivered == len(demands)
    assert faulted.stats.dropped == 0

    faults = resolve_faults(model, topo)
    adjacency = surviving_adjacency(topo, faults)
    hops = defaultdict(int)
    for moves in faulted.steps:
        for pid in moves:
            hops[pid] += 1
    worst = 0
    for pid, (src, dst) in enumerate(demands):
        surviving = surviving_distances(adjacency, dst)[src]
        intact = topo.distance(src, dst)
        assert surviving >= intact, "removing links shortened a path?!"
        # Minimal-detour routing: the realized path IS the surviving distance.
        assert hops[pid] == surviving
        worst = max(worst, surviving)
    assert faulted.stats.steps >= worst
    assert faulted.stats.total_hops >= baseline.stats.total_hops


@given(st.integers(0, 2**32 - 1), st.sampled_from([0.1, 0.25, 0.5]))
def test_link_fraction_sampling_is_seeded_and_sized(seed, fraction):
    topo = Mesh2D(4)
    model = FaultModel(seed=seed, link_fail_fraction=fraction)
    a = resolve_faults(model, topo)
    b = resolve_faults(model, topo)
    assert a.down_links == b.down_links
    assert len(a.down_links) == int(fraction * len(_links(topo)))
    assert a.down_links <= set(_links(topo))


@given(
    st.integers(0, 2**16), st.integers(0, 200), st.integers(0, 64),
    st.sampled_from([0.1, 0.5, 0.9]),
)
def test_transmission_draw_is_a_pure_function(seed, step, packet, prob):
    model = FaultModel(seed=seed, drop_prob=prob)
    again = FaultModel(seed=seed, drop_prob=prob)
    assert model.transmit_ok(step, packet) == again.transmit_ok(step, packet)


def test_dropping_everything_still_terminates():
    """drop_prob=1 with unbounded retries must hit the engine timeout, not
    spin forever."""
    from repro.sim import ScheduleError

    topo = Mesh2D(3)
    demands = [(0, 8)]
    model = FaultModel(drop_prob=1.0)
    with pytest.raises(ScheduleError, match="undelivered after"):
        route_demands(topo, demands, fault_model=model)
