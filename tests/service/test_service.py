"""End-to-end service behavior over real HTTP: every endpoint, every
response family (200 warm/cold, 400 named fields, 404, 405, 409)."""

from __future__ import annotations

import pytest

from repro.service import ENDPOINTS

CHEAP_JOB = {"topology": "mesh2d", "n": 16, "workload": "dense-permutation"}


class TestHealthAndStats:
    def test_healthz(self, client):
        response = client.healthz()
        assert response.ok
        assert response.body["ok"] is True
        assert response.body["draining"] is False
        assert response.body["inflight"] == 0
        assert response.body["uptime"] >= 0

    def test_stats_shape(self, client):
        body = client.stats().body
        assert set(body) >= {
            "service", "pool", "plancache", "plancache_disk",
            "plans_on_disk", "uptime",
        }
        assert body["service"]["requests"] >= 1  # this very call
        assert body["pool"]["workers"] == 4

    def test_stats_counts_outcomes(self, client):
        assert client.route(CHEAP_JOB).body["source"] == "cold"
        assert client.route(CHEAP_JOB).body["source"] == "warm"
        service = client.stats().body["service"]
        assert service["routes"] == 2
        assert service["cold"] == 1
        assert service["warm"] == 1
        assert service["computations"] == 1


class TestRoute:
    def test_cold_then_warm_identical_results(self, client):
        cold = client.route(CHEAP_JOB)
        warm = client.route(CHEAP_JOB)
        assert cold.ok and warm.ok
        assert cold.body["source"] == "cold"
        assert warm.body["source"] == "warm"
        assert cold.body["digest"] == warm.body["digest"]
        # The warm replay reports the exact stats the cold run recorded.
        assert cold.body["stats"] == warm.body["stats"]
        assert cold.body["stats"]["delivered"] == 16

    def test_explicit_demands(self, client):
        response = client.route(
            {"topology": "mesh2d", "n": 16, "demands": [[0, 15], [15, 0]]}
        )
        assert response.ok
        assert response.body["packets"] == 2
        assert response.body["stats"]["delivered"] == 2

    def test_seed_changes_digest(self, client):
        a = client.route({**CHEAP_JOB, "seed": 1}).body["digest"]
        b = client.route({**CHEAP_JOB, "seed": 2}).body["digest"]
        assert a != b

    def test_unroutable_fault_is_409(self, client):
        response = client.route(
            {**CHEAP_JOB, "fault": {"seed": 7, "link_fail_fraction": 0.9}}
        )
        assert response.status == 409
        assert response.body["error"] == "unroutable"
        assert "partition" in response.body["detail"]
        assert client.stats().body["service"]["unroutable"] == 1


class TestValidation:
    def test_named_fields_all_at_once(self, client):
        response = client.route({"topology": "torus9", "n": -3, "extra": 1})
        assert response.status == 400
        assert response.body["error"] == "invalid request"
        fields = response.body["fields"]
        assert set(fields) == {"topology", "n", "extra", "workload"}
        assert "torus9" in fields["topology"]
        assert fields["extra"] == "unknown field"

    def test_workload_and_demands_are_exclusive(self, client):
        response = client.route({**CHEAP_JOB, "demands": [[0, 1]]})
        assert response.status == 400
        assert "not both" in response.body["fields"]["demands"]

    def test_demands_out_of_range(self, client):
        response = client.route(
            {"topology": "mesh2d", "n": 16, "demands": [[0, 99]]}
        )
        assert response.status == 400
        assert "out of range" in response.body["fields"]["demands"]

    def test_bad_topology_shape(self, client):
        response = client.route({**CHEAP_JOB, "n": 15})  # not a square
        assert response.status == 400
        assert "n" in response.body["fields"]

    def test_non_canonical_router_rejected(self, client):
        response = client.route({**CHEAP_JOB, "router": "custom"})
        assert response.status == 400
        assert "router" in response.body["fields"]

    def test_bad_timeout(self, client):
        response = client.route({**CHEAP_JOB, "timeout": 0})
        assert response.status == 400
        assert "timeout" in response.body["fields"]

    def test_rejected_counter(self, client):
        client.route({"topology": "nope"})
        assert client.stats().body["service"]["rejected"] == 1


class TestPlans:
    def test_fetch_recorded_plan(self, client):
        digest = client.route(CHEAP_JOB).body["digest"]
        response = client.plan(digest)
        assert response.ok
        assert response.body["digest"] == digest
        assert response.body["steps"] > 0
        assert response.body["bytes"] > 0
        assert response.body["key"]["topology"]
        assert response.body["stats"]["delivered"] == 16

    def test_unknown_digest_404(self, client):
        response = client.plan("0" * 32)
        assert response.status == 404
        assert "no plan" in response.body["error"]

    def test_non_hex_digest_400(self, client):
        for digest in ("_stats", "..%2Fescape", "UPPER", "x" * 65):
            assert client.plan(digest).status == 400


class TestRoutingTable:
    def test_unknown_endpoint_lists_known_ones(self, client):
        response = client.request("GET", "/v2/nope")
        assert response.status == 404
        assert response.body["endpoints"] == [f"{m} {p}" for m, p, _, _ in ENDPOINTS]

    @pytest.mark.parametrize(
        "method,path",
        [
            ("GET", "/v1/route"),
            ("POST", "/v1/stats"),
            ("POST", "/v1/healthz"),
            ("POST", "/v1/plans/abc123"),
        ],
    )
    def test_wrong_method_405(self, client, method, path):
        response = client.request(method, path)
        assert response.status == 405
        assert "not allowed" in response.body["error"]
