"""Bit-reversal permutation schedules for each network (Section III).

The FFT flow graph ends with the bit-reversal permutation; how many
data-transfer steps it costs is where the three networks part ways:

* **hypercube** — the node at address ``01...1`` must reach ``1...10``, so
  no routing can beat ``log N`` steps; a constructive schedule of
  ``2 * floor(log N / 2) <= log N`` steps is built from conflict-free
  bit-pair swaps (Section III-A);
* **2D mesh** — the diagonally opposite corner packets must interchange:
  at least ``2(sqrt(N)-1)`` steps without wrap-around, and not less than
  ``sqrt(N)/2`` with wrap-around (Section III-B); here the schedule is
  *measured* by routing the permutation with greedy dimension-order
  routing;
* **2D hypermesh** — at most 3 steps by rearrangeability (Section III-C),
  realized constructively with the Clos/Slepian–Duguid decomposition.
"""

from __future__ import annotations

from ..networks.addressing import ilog2
from ..networks.base import Topology
from ..networks.hypercube import Hypercube
from ..networks.hypermesh import Hypermesh, Hypermesh2D
from ..networks.mesh import Mesh2D
from ..networks.torus import Torus2D
from ..routing.clos import route_permutation_3step
from ..routing.families import bit_reversal
from ..sim.engine import route_permutation
from ..sim.schedule import CommSchedule, schedule_from_phases

__all__ = [
    "hypercube_bit_reversal_schedule",
    "hypermesh_bit_reversal_schedule",
    "mesh_bit_reversal_schedule",
    "bit_reversal_schedule",
]


def hypercube_bit_reversal_schedule(hypercube: Hypercube) -> CommSchedule:
    """Constructive bit reversal in ``2 * floor(log N / 2)`` steps.

    Reversing ``n`` bits is the product of the ``floor(n/2)`` transpositions
    ``(bit i, bit n-1-i)``; each transposition is a 2-step conflict-free
    exchange (:func:`repro.core.lowering.hypercube_bit_swap_schedule`).
    Equals ``log N`` steps for even ``log N`` (every power-of-4 machine,
    including the paper's 4K = 2^12), matching the paper's lower bound
    exactly.
    """
    n = hypercube.num_nodes
    width = hypercube.dimension
    position = list(range(n))
    steps: list[dict[int, int]] = []
    for i in range(width // 2):
        j = width - 1 - i
        step1: dict[int, int] = {}
        step2: dict[int, int] = {}
        for pid in range(n):
            pos = position[pid]
            if ((pos >> i) & 1) != ((pos >> j) & 1):
                step1[pid] = pos ^ (1 << i)
                step2[pid] = pos ^ (1 << i) ^ (1 << j)
                position[pid] = step2[pid]
        steps.append(step1)
        steps.append(step2)
    return CommSchedule(
        topology=hypercube, logical=bit_reversal(n), steps=tuple(steps)
    )


def hypermesh_bit_reversal_schedule(hypermesh: Hypermesh2D) -> CommSchedule:
    """Bit reversal in at most 3 net steps via Clos decomposition.

    In row-major coordinates, reversing the index bits maps
    ``(r, c) -> (reverse(c), reverse(r))`` — rows and columns trade places —
    so the generic 3-step rearrangeability bound applies (and is what this
    schedule achieves; the row/column structure does not admit fewer steps
    in general because the destination row depends on the source column).
    """
    side = hypermesh.side
    ilog2(side)  # row-major split requires a power-of-two side
    perm = bit_reversal(hypermesh.num_nodes)
    route = route_permutation_3step(perm, hypermesh)
    return schedule_from_phases(hypermesh, route.phases)


def mesh_bit_reversal_schedule(mesh: Mesh2D | Torus2D) -> CommSchedule:
    """Measured bit reversal on the mesh/torus via greedy XY routing.

    There is no clever constant-step trick available: the paper's argument
    is a distance bound (opposite corners must swap), so the honest
    reproduction routes the permutation with the canonical dimension-order
    router and reports what the network actually took.
    """
    ilog2(mesh.side)
    perm = bit_reversal(mesh.num_nodes)
    routed = route_permutation(mesh, perm)
    return routed.schedule


def bit_reversal_schedule(topology: Topology) -> CommSchedule:
    """Dispatch the bit-reversal lowering on the topology type."""
    if isinstance(topology, Hypercube):
        return hypercube_bit_reversal_schedule(topology)
    if isinstance(topology, Hypermesh2D):
        return hypermesh_bit_reversal_schedule(topology)
    if isinstance(topology, (Mesh2D, Torus2D)):
        return mesh_bit_reversal_schedule(topology)
    if isinstance(topology, Hypermesh):
        # General hypermeshes: greedy digit-correction routing (adaptive).
        perm = bit_reversal(topology.num_nodes)
        return route_permutation(topology, perm).schedule
    raise TypeError(f"no bit-reversal lowering for {type(topology).__name__}")
