"""The parallel FFT: flow graph + network mapping + SIMD execution.

:func:`build_fft_program` assembles the full compute/communicate program for
one PE per sample: for every DIF stage an :class:`~repro.sim.machine.Exchange`
(partners swap copies across the network) followed by a
:class:`~repro.sim.machine.Compute` (the butterfly arithmetic, vectorized
over PEs), then the closing bit-reversal :class:`~repro.sim.machine.Permute`.

:func:`parallel_fft` runs the program on a
:class:`~repro.sim.machine.SimdMachine` and returns both the numeric result
(tested against ``numpy.fft.fft``) and the step accounting (tested against
Table 2A) — one execution, both halves of the reproduction.

The communication plan is a pure function of ``(topology, N,
include_bit_reversal)``, so it is planned **once per topology instance**
and replayed across repeated transforms: :func:`fft_plan` memoizes the
:class:`~repro.core.fftmap.FftMapping` in a per-instance weak cache, and
:func:`parallel_fft` consults it whenever no explicit ``mapping`` is
passed.  (The cache is keyed by instance, not by structural fingerprint,
because :class:`~repro.sim.machine.SimdMachine` requires each schedule's
topology to *be* the machine's topology object.)
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

import numpy as np

from ..core.fftmap import FftMapping, map_fft
from ..networks.base import Topology
from ..sim.machine import Compute, Exchange, Permute, ProgramOp, SimdMachine
from .twiddle import stage_twiddles

__all__ = [
    "ParallelFftResult",
    "build_fft_program",
    "fft_plan",
    "parallel_fft",
    "parallel_ifft",
]

#: topology instance -> {include_bit_reversal: planned FftMapping}.  Weak
#: keys: dropping the topology drops its plans.
_FFT_PLANS: "WeakKeyDictionary[Topology, dict[bool, FftMapping]]" = (
    WeakKeyDictionary()
)


def fft_plan(
    topology: Topology, *, include_bit_reversal: bool = True
) -> FftMapping:
    """Plan-once butterfly mapping for repeated transforms on ``topology``.

    The first call per ``(topology instance, include_bit_reversal)`` builds
    the full :class:`~repro.core.fftmap.FftMapping` (stage exchange
    schedules plus the optional bit-reversal schedule); later calls return
    the identical object, so a workload of many same-size transforms pays
    the planning cost once and replays the schedules thereafter.
    """
    per_topo = _FFT_PLANS.get(topology)
    if per_topo is None:
        per_topo = _FFT_PLANS.setdefault(topology, {})
    mapping = per_topo.get(include_bit_reversal)
    if mapping is None:
        mapping = map_fft(topology, include_bit_reversal=include_bit_reversal)
        per_topo[include_bit_reversal] = mapping
    return mapping


@dataclass(frozen=True)
class ParallelFftResult:
    """Outcome of a mapped FFT execution.

    Attributes
    ----------
    spectrum:
        The DFT of the input, in natural order (bit reversal applied) or
        bit-reversed order (when the mapping skips it).
    data_transfer_steps / computation_steps:
        Word-level step totals actually consumed by the run.
    mapping:
        The communication plan that was executed.
    """

    spectrum: np.ndarray
    data_transfer_steps: int
    computation_steps: int
    mapping: FftMapping


def _butterfly_compute(n: int, bit: int):
    """Vectorized DIF butterfly for the stage exchanging on ``bit``."""
    mask = 1 << bit
    tw = stage_twiddles(n, bit)

    def fn(values: np.ndarray, received: np.ndarray, idx: np.ndarray) -> np.ndarray:
        upper = (idx & mask) == 0
        return np.where(upper, values + received, (received - values) * tw)

    return fn


def build_fft_program(mapping: FftMapping) -> list[ProgramOp]:
    """Lower an :class:`FftMapping` to a SIMD machine program."""
    n = mapping.topology.num_nodes
    program: list[ProgramOp] = []
    for schedule in mapping.stage_schedules:
        # The stage's exchanged bit is recoverable from its permutation:
        # a butterfly exchange satisfies perm[0] == 1 << bit.
        bit = int(schedule.logical[0]).bit_length() - 1
        program.append(Exchange(schedule=schedule, label=f"exchange bit {bit}"))
        program.append(Compute(fn=_butterfly_compute(n, bit), label=f"butterfly {bit}"))
    if mapping.bitrev_schedule is not None:
        program.append(Permute(schedule=mapping.bitrev_schedule, label="bit-reversal"))
    return program


def parallel_fft(
    topology: Topology,
    samples: np.ndarray,
    *,
    include_bit_reversal: bool = True,
    validate: bool = False,
    mapping: FftMapping | None = None,
) -> ParallelFftResult:
    """Compute the DFT of ``samples`` on the simulated parallel machine.

    Parameters
    ----------
    topology:
        Target network with exactly ``len(samples)`` PEs.
    samples:
        Complex (or real) sample vector, one sample per PE, natural order.
    include_bit_reversal:
        Skip the closing permutation to reproduce the paper's "bit-reversal
        not needed" timing variant; the spectrum then comes back
        bit-reversed.
    validate:
        Replay every communication schedule against the hardware model
        (slower; the integration tests use it).
    mapping:
        Reuse a previously built mapping (must match ``topology`` and
        ``include_bit_reversal``).  When omitted, the per-instance
        :func:`fft_plan` cache supplies it, so repeated transforms on one
        topology plan each butterfly stage once and replay it thereafter.
    """
    samples = np.asarray(samples, dtype=np.complex128)
    if samples.ndim != 1:
        raise ValueError("expected a 1D sample vector")
    if samples.size != topology.num_nodes:
        raise ValueError(
            f"{samples.size} samples need {samples.size} PEs, topology has "
            f"{topology.num_nodes}"
        )
    if mapping is None:
        mapping = fft_plan(topology, include_bit_reversal=include_bit_reversal)
    program = build_fft_program(mapping)
    machine = SimdMachine(topology, validate=validate)
    result = machine.run(program, samples)
    return ParallelFftResult(
        spectrum=result.values,
        data_transfer_steps=result.data_transfer_steps,
        computation_steps=result.computation_steps,
        mapping=mapping,
    )


def parallel_ifft(
    topology: Topology,
    spectrum: np.ndarray,
    *,
    validate: bool = False,
    mapping: FftMapping | None = None,
) -> ParallelFftResult:
    """Inverse DFT on the simulated machine, via conjugation.

    ``ifft(X) = conj(fft(conj(X))) / N`` — the same mapped forward transform
    runs (identical communication schedule and step bill); only the local
    conjugations and scaling differ, and those are computation, not
    communication.
    """
    spectrum = np.asarray(spectrum, dtype=np.complex128)
    result = parallel_fft(
        topology, np.conj(spectrum), validate=validate, mapping=mapping
    )
    return ParallelFftResult(
        spectrum=np.conj(result.spectrum) / spectrum.size,
        data_transfer_steps=result.data_transfer_steps,
        computation_steps=result.computation_steps,
        mapping=result.mapping,
    )
