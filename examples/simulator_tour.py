"""A tour of the word-level simulator's observability features.

Walks one permutation (the FFT's bit reversal on a 4x4 machine) through the
simulator's instruments: the step-by-step timeline, buffer occupancy,
bisector-crossing analysis, and a three-way switching-discipline shoot-out
(store-and-forward vs deflection vs the hypermesh's Clos schedule).

    python examples/simulator_tour.py
"""

from repro import Hypercube, Hypermesh2D, Mesh2D, bit_reversal
from repro.core import hypermesh_bit_reversal_schedule
from repro.sim import route_permutation, traffic_summary
from repro.sim.deflection import route_deflection
from repro.sim.tracing import render_occupancy, render_timeline
from repro.viz import format_table


def main() -> None:
    n = 16
    perm = bit_reversal(n)

    print("== The 16-point bit reversal, three ways ==\n")

    # 1. The hypermesh's constructive 3-step Clos schedule, step by step.
    hm_sched = hypermesh_bit_reversal_schedule(Hypermesh2D(4))
    hm_sched.validate()
    print("2D hypermesh (Clos, 3 net steps) — packet timeline:")
    print(render_timeline(hm_sched))
    print()

    # 2. Greedy XY on the mesh: measured, with buffer pressure over time.
    mesh_routed = route_permutation(Mesh2D(4), perm)
    print(
        f"2D mesh (greedy XY): {mesh_routed.stats.steps} steps, "
        f"{mesh_routed.stats.blocked_moves} blocked proposals, "
        f"max buffer {mesh_routed.stats.max_queue_depth}"
    )
    print(render_occupancy(mesh_routed.schedule))
    print()

    # 3. Deflection routing on the hypercube: bufferless, some detours.
    deflected = route_deflection(Hypercube(4), perm)
    deflected.schedule.validate()
    print(
        f"hypercube (deflection): {deflected.steps} steps, "
        f"{deflected.deflections} deflections, "
        f"efficiency {deflected.efficiency:.2f}"
    )
    print()

    # 4. Where the traffic goes: bisector crossings per discipline.
    rows = []
    for name, sched in (
        ("hypermesh Clos", hm_sched),
        ("mesh XY", mesh_routed.schedule),
        ("hypercube deflection", deflected.schedule),
    ):
        ts = traffic_summary(sched)
        rows.append(
            [
                name,
                ts.steps,
                ts.total_moves,
                ts.bisection_crossings_total,
                f"{ts.crossing_fraction:.2f}",
                ts.busiest_channel_load,
            ]
        )
    print(
        format_table(
            ["discipline", "steps", "moves", "bisector crossings", "fraction", "busiest channel"],
            rows,
        )
    )
    print(
        "\nEvery discipline must push ~half the packets across the bisector "
        "(Section V); they differ only in how many steps that takes."
    )


if __name__ == "__main__":
    main()
