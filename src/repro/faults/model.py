"""The seeded, deterministic fault model.

A :class:`FaultModel` is *declarative*: it names what is broken (or how much
of the machine to break) without reference to a concrete topology.
:func:`resolve_faults` pins it to one topology instance, sampling the
``link_fail_fraction`` with a seeded NumPy generator and producing the exact
down sets plus the surviving adjacency the fault-aware router routes on.

Determinism is the load-bearing property.  Every stochastic choice is a
pure function of the model's ``seed``:

* the sampled failed-link set depends only on ``(seed, topology
  fingerprint)`` — the candidate links are enumerated in a canonical order
  before sampling;
* the intermittent per-transmission drop decision for packet ``pid`` at
  step ``step`` is a hash of ``(seed, step, pid)`` — **not** a stateful RNG,
  so it does not depend on arbitration order or on how many other packets
  were examined first.

That purity is what lets faulted runs participate in the routing plan
cache: the model's :meth:`FaultModel.fingerprint` is folded into the
:class:`~repro.sim.plancache.PlanKey`, and two runs with equal fingerprints
really do produce bit-identical schedules.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..networks.base import Topology
    from ..networks.degraded import SurvivingGraph

__all__ = ["FaultModel", "ResolvedFaults", "UnroutableError", "resolve_faults"]


class UnroutableError(RuntimeError):
    """A packet's destination cannot be reached in the surviving network.

    Raised by the fault-aware router (and therefore by the engine entry
    points) when faults partition a packet's source from its destination,
    or when an endpoint is itself a failed node.  This is deliberately not
    a :class:`~repro.sim.schedule.ScheduleError`: the schedule is not
    malformed — the machine is broken.
    """


def _norm_link(link: Iterable[int]) -> tuple[int, int]:
    """Canonical undirected form ``(min, max)`` of a link spec."""
    u, v = link
    u, v = int(u), int(v)
    if u == v:
        raise ValueError(f"a link joins two distinct nodes, got ({u}, {v})")
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class FaultModel:
    """Declarative, seeded description of what is broken in the machine.

    Attributes
    ----------
    seed:
        Master seed for every sampled or per-step stochastic decision.
    link_failures:
        Undirected links that are hard-down (both directions unusable).
        Stored normalized as ``(min, max)`` pairs.
    node_failures:
        Nodes that are dead: they originate nothing, receive nothing, and
        cannot be routed through.
    net_failures:
        Hypermesh net ids that are hard-down (no packet may traverse them).
    degraded_nets:
        Hypermesh net ids whose crossbar is degraded from one-step
        permutation capability to **serialized sub-transfers**: at most one
        packet crosses the net per step instead of a full partial
        permutation.
    link_fail_fraction:
        Additionally fail this fraction of the topology's links, sampled
        deterministically from ``seed`` at resolve time (point-to-point
        topologies only; ignored for hypergraph networks).
    drop_prob:
        Intermittent per-transmission failure probability: each granted
        move independently fails with this probability (decided by a hash
        of ``(seed, step, packet)``), leaving the packet queued to retry.
    retry_limit:
        Failed transmissions a packet survives before it is permanently
        **dropped** (removed from the network and counted in
        ``RoutingStats.dropped``).  ``None`` means retry forever — the
        engine's ``max_steps`` bound is then the only timeout.
    """

    seed: int = 0
    link_failures: frozenset[tuple[int, int]] = frozenset()
    node_failures: frozenset[int] = frozenset()
    net_failures: frozenset[int] = frozenset()
    degraded_nets: frozenset[int] = frozenset()
    link_fail_fraction: float = 0.0
    drop_prob: float = 0.0
    retry_limit: int | None = None
    _drop_salt: bytes = field(init=False, repr=False, compare=False, default=b"")

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "link_failures",
            frozenset(_norm_link(l) for l in self.link_failures),
        )
        object.__setattr__(
            self, "node_failures", frozenset(int(n) for n in self.node_failures)
        )
        object.__setattr__(
            self, "net_failures", frozenset(int(n) for n in self.net_failures)
        )
        object.__setattr__(
            self, "degraded_nets", frozenset(int(n) for n in self.degraded_nets)
        )
        if not 0.0 <= float(self.link_fail_fraction) <= 1.0:
            raise ValueError(
                f"link_fail_fraction must be in [0, 1], got "
                f"{self.link_fail_fraction}"
            )
        if not 0.0 <= float(self.drop_prob) <= 1.0:
            raise ValueError(
                f"drop_prob must be in [0, 1], got {self.drop_prob}"
            )
        if self.retry_limit is not None and int(self.retry_limit) < 0:
            raise ValueError(
                f"retry_limit must be >= 0 or None, got {self.retry_limit}"
            )
        object.__setattr__(
            self, "_drop_salt", f"drop:{int(self.seed)}:".encode()
        )

    # ------------------------------------------------------------- identity
    @property
    def enabled(self) -> bool:
        """Whether any fault is actually configured.

        A disabled model attached to the engine is contractually a no-op:
        the engine takes its fault-free fast path and the output is
        bit-identical to running with no model at all.
        """
        return bool(
            self.link_failures
            or self.node_failures
            or self.net_failures
            or self.degraded_nets
            or self.link_fail_fraction > 0.0
            or self.drop_prob > 0.0
        )

    def fingerprint(self) -> str:
        """Stable content identity, folded into the routing plan-cache key.

        Disabled models fingerprint as ``"none"`` — the same key component
        as passing no model — because they are contractually no-ops.
        Everything an enabled model can change about the engine's output is
        covered, so equal fingerprints imply bit-identical faulted runs.
        """
        if not self.enabled:
            return "none"
        h = hashlib.sha256()
        h.update(f"seed={self.seed}".encode())
        h.update(
            ("links=" + ",".join(f"{u}-{v}" for u, v in sorted(self.link_failures))).encode()
        )
        h.update(("nodes=" + ",".join(map(str, sorted(self.node_failures)))).encode())
        h.update(("nets=" + ",".join(map(str, sorted(self.net_failures)))).encode())
        h.update(("degraded=" + ",".join(map(str, sorted(self.degraded_nets)))).encode())
        h.update(f"frac={float(self.link_fail_fraction)!r}".encode())
        h.update(f"drop={float(self.drop_prob)!r}".encode())
        h.update(f"retry={self.retry_limit}".encode())
        return "sha256:" + h.hexdigest()[:32]

    # ------------------------------------------------- per-step stochastics
    def transmit_ok(self, step: int, packet: int) -> bool:
        """Whether packet ``packet``'s granted move at ``step`` transmits.

        Deterministic Bernoulli(1 - drop_prob) draw keyed by ``(seed, step,
        packet)``: independent of arbitration order, queue contents, and
        every other packet's fate, so replays and differential runs agree.
        """
        if self.drop_prob <= 0.0:
            return True
        if self.drop_prob >= 1.0:
            return False
        digest = hashlib.sha256(
            self._drop_salt + f"{step}:{packet}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "little") / 2**64
        return draw >= self.drop_prob

    def transmit_ok_batch(self, step: int, packets) -> np.ndarray:
        """Vector :meth:`transmit_ok`: one bool per packet, same draws.

        Each draw is the *identical* SHA-256 hash of ``(seed, step,
        packet)`` the scalar method computes — a pure per-packet function,
        so batching cannot reorder or change the sequence — with the
        degenerate probabilities (0 and 1) short-circuited to one array
        fill.  This is what lets the vectorized degraded core settle a
        whole step's granted transmissions in one call while staying
        bit-identical to the indexed core's per-move draws.
        """
        packets = np.asarray(packets, dtype=np.int64)
        m = packets.shape[0]
        if self.drop_prob <= 0.0:
            return np.ones(m, dtype=bool)
        if self.drop_prob >= 1.0:
            return np.zeros(m, dtype=bool)
        salt = self._drop_salt
        prefix = f"{step}:".encode()
        prob = self.drop_prob
        sha256 = hashlib.sha256
        from_bytes = int.from_bytes
        return np.fromiter(
            (
                from_bytes(
                    sha256(salt + prefix + b"%d" % pid).digest()[:8],
                    "little",
                ) / 2**64 >= prob
                for pid in packets.tolist()
            ),
            dtype=bool,
            count=m,
        )

    # ------------------------------------------------------- (de)serializing
    def to_params(self) -> dict:
        """Flat JSON-serializable form (campaign task params, CLI echo)."""
        out: dict = {"seed": int(self.seed)}
        if self.link_failures:
            out["link_failures"] = sorted([u, v] for u, v in self.link_failures)
        if self.node_failures:
            out["node_failures"] = sorted(self.node_failures)
        if self.net_failures:
            out["net_failures"] = sorted(self.net_failures)
        if self.degraded_nets:
            out["degraded_nets"] = sorted(self.degraded_nets)
        if self.link_fail_fraction:
            out["link_fail_fraction"] = float(self.link_fail_fraction)
        if self.drop_prob:
            out["drop_prob"] = float(self.drop_prob)
        if self.retry_limit is not None:
            out["retry_limit"] = int(self.retry_limit)
        return out

    @classmethod
    def from_params(cls, params: Mapping) -> "FaultModel":
        """Inverse of :meth:`to_params` (unknown keys are an error)."""
        known = {
            "seed", "link_failures", "node_failures", "net_failures",
            "degraded_nets", "link_fail_fraction", "drop_prob", "retry_limit",
        }
        unknown = set(params) - known
        if unknown:
            raise ValueError(
                f"unknown fault params {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(
            seed=int(params.get("seed", 0)),
            link_failures=frozenset(
                _norm_link(l) for l in params.get("link_failures", ())
            ),
            node_failures=frozenset(params.get("node_failures", ())),
            net_failures=frozenset(params.get("net_failures", ())),
            degraded_nets=frozenset(params.get("degraded_nets", ())),
            link_fail_fraction=float(params.get("link_fail_fraction", 0.0)),
            drop_prob=float(params.get("drop_prob", 0.0)),
            retry_limit=params.get("retry_limit"),
        )

    def with_(self, **changes) -> "FaultModel":
        """A copy with the given fields replaced (sweep convenience)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ResolvedFaults:
    """A :class:`FaultModel` pinned to one concrete topology.

    The resolve step samples ``link_fail_fraction``, validates every
    explicit fault against the topology, and precomputes the down sets the
    router and engine consult.  ``down_links`` holds *undirected*
    normalized pairs; both directions of a down link are unusable.
    """

    model: FaultModel
    down_links: frozenset[tuple[int, int]]
    down_nodes: frozenset[int]
    down_nets: frozenset[int]
    degraded_nets: frozenset[int]
    #: Per-topology :class:`~repro.networks.degraded.SurvivingGraph` cache,
    #: keyed by ``id(topology)`` with a weakref guard against id reuse.
    #: Excluded from equality/repr; reset on pickling (weakrefs don't
    #: serialize, and the structures rebuild deterministically).
    _cache: dict = field(
        init=False, repr=False, compare=False, default_factory=dict
    )

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_cache"] = {}
        return state

    def surviving_graph(self, topology: "Topology") -> "SurvivingGraph":
        """The cached surviving-network structure for ``topology``.

        Adjacency, its CSR image, and every BFS distance table built so
        far are shared by all routers constructed against this resolved
        fault set — repeated ``route_demands`` calls with one fault config
        stop rebuilding them per call.  The cache key is the topology
        instance (weakref-checked), so one resolved set never serves a
        different machine's structure.
        """
        from ..networks.degraded import SurvivingGraph, surviving_adjacency

        entry = self._cache.get(id(topology))
        if entry is not None and entry[0]() is topology:
            return entry[1]
        graph = SurvivingGraph(surviving_adjacency(topology, self))
        self._cache[id(topology)] = (weakref.ref(topology), graph)
        return graph

    @property
    def structural(self) -> bool:
        """Whether any link/node/net is actually removed or degraded
        (as opposed to only intermittent transmission drops)."""
        return bool(
            self.down_links or self.down_nodes or self.down_nets
            or self.degraded_nets
        )

    def link_down(self, u: int, v: int) -> bool:
        """Whether the (undirected) link ``u — v`` is down."""
        return ((u, v) if u < v else (v, u)) in self.down_links

    def node_down(self, node: int) -> bool:
        return node in self.down_nodes

    def net_down(self, net: int) -> bool:
        return net in self.down_nets

    def net_degraded(self, net: int) -> bool:
        return net in self.degraded_nets

    def summary(self) -> dict:
        """Flat counts for logging / the ``fault.config`` obs event."""
        return {
            "links_down": len(self.down_links),
            "nodes_down": len(self.down_nodes),
            "nets_down": len(self.down_nets),
            "nets_degraded": len(self.degraded_nets),
            "drop_prob": float(self.model.drop_prob),
        }


#: Memo for :func:`resolve_faults`, keyed by ``(id(topology), model)`` with
#: a weakref guard: entries die with their topology (the callback evicts),
#: and an id reused by a new topology misses the ``is`` check and
#: re-resolves.  Resolution is deterministic, so equal keys really do mean
#: an identical result — the memo exists so repeated routing calls against
#: one fault config share one :class:`ResolvedFaults` (and therefore one
#: cached surviving graph) instead of resampling and rebuilding per call.
_RESOLVE_MEMO: dict = {}


def resolve_faults(model: FaultModel, topology: "Topology") -> ResolvedFaults:
    """Pin ``model`` to ``topology``: validate, sample, and build down sets.

    Raises ``ValueError`` when an explicit fault names a node, link, or net
    the topology does not have — a misconfigured fault plan should fail
    loudly, not silently injure a different machine.

    Memoized per ``(model, topology)`` pair: the same model resolved
    against the same topology instance returns the *same*
    :class:`ResolvedFaults` object, which is what lets its surviving-graph
    cache pay off across routing calls.
    """
    key = (id(topology), model)
    hit = _RESOLVE_MEMO.get(key)
    if hit is not None and hit[0]() is topology:
        return hit[1]
    resolved = _resolve_faults(model, topology)
    try:
        ref = weakref.ref(topology, lambda _, k=key: _RESOLVE_MEMO.pop(k, None))
    except TypeError:  # pragma: no cover - non-weakrefable topology
        return resolved
    _RESOLVE_MEMO[key] = (ref, resolved)
    return resolved


def _resolve_faults(model: FaultModel, topology: "Topology") -> ResolvedFaults:
    from ..networks.base import ChannelModel, HypergraphTopology

    n = topology.num_nodes
    for node in model.node_failures:
        if not 0 <= node < n:
            raise ValueError(f"fault names node {node} outside [0, {n})")

    hypergraph = topology.channel_model is ChannelModel.HYPERGRAPH_NET
    if (model.net_failures or model.degraded_nets) and not hypergraph:
        raise ValueError(
            f"net faults need a hypergraph topology, got "
            f"{type(topology).__name__}"
        )
    down_nets = frozenset(model.net_failures)
    degraded = frozenset(model.degraded_nets)
    if hypergraph:
        assert isinstance(topology, HypergraphTopology)
        num_nets = topology.num_nets()
        for net in sorted(down_nets | degraded):
            if not 0 <= net < num_nets:
                raise ValueError(
                    f"fault names net {net} outside [0, {num_nets})"
                )
        overlap = down_nets & degraded
        if overlap:
            raise ValueError(
                f"nets {sorted(overlap)} are both down and degraded; "
                f"pick one fault per net"
            )

    down_links = set(model.link_failures)
    if down_links or model.link_fail_fraction > 0.0:
        if hypergraph:
            if down_links:
                raise ValueError(
                    "hypergraph networks have nets, not links; use "
                    "net_failures / degraded_nets"
                )
        else:
            all_links = sorted(
                (u, v) if u < v else (v, u) for u, v in topology.links()
            )
            link_set = set(all_links)
            for link in down_links:
                if link not in link_set:
                    raise ValueError(
                        f"fault names link {link} the topology does not have"
                    )
            if model.link_fail_fraction > 0.0:
                k = int(model.link_fail_fraction * len(all_links))
                if k:
                    rng = np.random.default_rng(model.seed)
                    picks = rng.choice(len(all_links), size=k, replace=False)
                    down_links.update(all_links[int(i)] for i in picks)

    return ResolvedFaults(
        model=model,
        down_links=frozenset(down_links),
        down_nodes=frozenset(model.node_failures),
        down_nets=down_nets,
        degraded_nets=degraded,
    )
