"""Property-based tests (hypothesis) for the permutation algebra."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.routing import Permutation


def permutations(max_n: int = 64):
    return st.integers(1, max_n).flatmap(
        lambda n: st.permutations(list(range(n)))
    ).map(Permutation)


@given(permutations())
def test_inverse_composes_to_identity(p):
    assert p.compose(p.inverse()).is_identity()
    assert p.inverse().compose(p).is_identity()


@given(permutations())
def test_double_inverse_is_self(p):
    assert p.inverse().inverse() == p


@given(st.integers(1, 48).flatmap(
    lambda n: st.tuples(
        st.permutations(list(range(n))),
        st.permutations(list(range(n))),
        st.permutations(list(range(n))),
    )
))
def test_composition_associative(triple):
    a, b, c = (Permutation(x) for x in triple)
    assert a.compose(b).compose(c) == a.compose(b.compose(c))


@given(permutations())
def test_identity_is_neutral(p):
    e = Permutation.identity(p.n)
    assert p.compose(e) == p
    assert e.compose(p) == p


@given(st.integers(1, 48).flatmap(
    lambda n: st.tuples(
        st.permutations(list(range(n))), st.permutations(list(range(n)))
    )
))
def test_inverse_of_composition(pair):
    a, b = (Permutation(x) for x in pair)
    assert a.compose(b).inverse() == b.inverse().compose(a.inverse())


@given(permutations())
def test_cycles_partition_non_fixed_points(p):
    cycle_members = [x for cycle in p.cycles() for x in cycle]
    assert len(cycle_members) == len(set(cycle_members))
    assert sorted(cycle_members + p.fixed_points().tolist()) == list(range(p.n))


@given(permutations())
def test_apply_preserves_multiset(p):
    data = np.arange(p.n) * 10
    out = p.apply(data)
    assert sorted(out.tolist()) == sorted(data.tolist())


@given(permutations())
def test_apply_matches_index_semantics(p):
    data = np.arange(p.n)
    out = p.apply(data)
    for i in range(p.n):
        assert out[p[i]] == data[i]


@given(permutations())
def test_involution_iff_square_is_identity(p):
    assert p.is_involution() == p.compose(p).is_identity()


@given(st.integers(0, 6))
def test_bpc_family_closed_under_composition(width):
    from repro.routing import bit_permutation

    n = 1 << width
    rng = np.random.default_rng(width)
    src1 = rng.permutation(width).tolist()
    src2 = rng.permutation(width).tolist()
    p = bit_permutation(n, src1, int(rng.integers(n)))
    q = bit_permutation(n, src2, int(rng.integers(n)))
    assert p.compose(q).is_bpc()


@given(st.integers(1, 6), st.data())
def test_bpc_spec_roundtrip(width, data):
    from repro.routing import bit_permutation

    n = 1 << width
    sources = data.draw(st.permutations(list(range(width))))
    mask = data.draw(st.integers(0, n - 1))
    p = bit_permutation(n, sources, mask)
    spec = p.bpc_spec()
    assert spec is not None
    recovered_sources, recovered_mask = spec
    assert list(recovered_sources) == list(sources)
    assert recovered_mask == mask
