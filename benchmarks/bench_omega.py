"""E14 — Section I's multistage-network contrast, made executable.

"The hypermesh can realize all Omega, Omega Inverse, DESCEND and ASCEND
permutations in one pass and in minimum logical distance."  This bench routes
the FFT's permutations through a real Omega network and through the 2D
hypermesh: the butterfly exchanges pass both in one step, but the closing
bit reversal blocks the Omega network (multiple passes) while the hypermesh
needs at most 3.
"""

import numpy as np
from conftest import emit

from repro.networks import OmegaNetwork
from repro.routing import (
    Permutation,
    bit_reversal,
    butterfly_exchange,
    route_permutation_3step,
)
from repro.viz import format_table


def test_butterfly_permutations_one_pass(benchmark):
    def check(n=64):
        om = OmegaNetwork(n)
        return [om.is_admissible(butterfly_exchange(n, b)) for b in range(6)]

    results = benchmark(check)
    emit(
        "Omega network: FFT butterfly exchanges, one-pass admissibility",
        "\n".join(f"bit {b}: {'PASS' if ok else 'BLOCK'}" for b, ok in enumerate(results)),
    )
    assert all(results)


def test_bit_reversal_blocks_omega(benchmark):
    def check():
        rows = []
        for n in (16, 64, 256):
            om = OmegaNetwork(n)
            om_passes = om.passes_required(bit_reversal(n))
            hm_steps = route_permutation_3step(bit_reversal(n)).num_steps
            rows.append((n, om_passes, hm_steps))
        return rows

    rows = benchmark(check)
    emit(
        "Bit reversal: Omega passes vs hypermesh steps",
        format_table(["N", "Omega passes", "hypermesh steps"], rows),
    )
    for n, om_passes, hm_steps in rows:
        assert om_passes > 1  # blocks
        assert hm_steps <= 3  # rearrangeable


def test_random_permutations(benchmark):
    def check(n=64, trials=10):
        rng = np.random.default_rng(0)
        om = OmegaNetwork(n)
        om_passes = []
        hm_steps = []
        for _ in range(trials):
            perm = Permutation.random(n, rng)
            om_passes.append(om.passes_required(perm))
            hm_steps.append(route_permutation_3step(perm).num_steps)
        return om_passes, hm_steps

    om_passes, hm_steps = benchmark(check)
    emit(
        "Random permutations (N = 64, 10 trials)",
        f"Omega passes:    min={min(om_passes)} mean={np.mean(om_passes):.1f} "
        f"max={max(om_passes)}\n"
        f"hypermesh steps: min={min(hm_steps)} mean={np.mean(hm_steps):.1f} "
        f"max={max(hm_steps)}",
    )
    assert max(hm_steps) <= 3
    assert np.mean(om_passes) > 2
