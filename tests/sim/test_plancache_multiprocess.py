"""Multi-process hardening of the plan cache's on-disk tier.

Two worker processes hammer one plan root concurrently — distinct keys,
plus one shared key both sides keep re-recording — and the tier must come
out sane: every blob parses, no staged tmp files survive, and the
cross-process ``stores`` counter in the ``_stats.json`` sidecar equals the
exact number of puts (the advisory lock serializes the read-modify-write,
so no increment is lost to interleaving).
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

from repro.sim.plancache import (
    STATS_SIDECAR,
    CachedPlan,
    PlanCache,
    PlanKey,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method required for in-test worker functions",
)

PUTS_PER_WORKER = 20  # per worker: PUTS distinct keys + PUTS shared-key puts


def _plan(marker: int) -> CachedPlan:
    return CachedPlan(
        steps=({0: marker},),
        stats_fields={
            "steps": 1,
            "total_hops": 1,
            "max_queue_depth": 1,
            "blocked_moves": 0,
            "delivered": 1,
            "dropped": 0,
            "retried": 0,
            "per_step_moves": [1],
        },
    )


def _key(topology: str, demands: str) -> PlanKey:
    return PlanKey(
        topology=topology,
        demands=demands,
        router="mesh-dimension-order",
        arbitration="overtaking",
    )


def _hammer(root: str, worker: int, barrier) -> None:
    cache = PlanCache(root)
    barrier.wait()  # maximize overlap: both workers start writing together
    for i in range(PUTS_PER_WORKER):
        cache.put(_key(f"worker{worker}", f"demand{i}"), _plan(i))
        # The contended path: both workers re-record the same digest.
        cache.put(_key("shared", "same-demands"), _plan(worker))


class TestTwoProcessHammer:
    def test_concurrent_writers_leave_a_sane_tier(self, tmp_path):
        root = tmp_path / "plans"
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        procs = [
            ctx.Process(target=_hammer, args=(str(root), w, barrier))
            for w in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0

        cache = PlanCache(root)
        blobs = cache.disk_blobs()
        # 2 * PUTS distinct keys + 1 shared key.
        assert len(blobs) == 2 * PUTS_PER_WORKER + 1
        for path in blobs:
            payload = json.loads(path.read_text())  # parses: no torn blob
            CachedPlan.from_payload(payload)  # and replays: counters typed
        # The contended digest holds one complete plan from either worker.
        shared = cache.get(_key("shared", "same-demands"))
        assert shared is not None
        assert shared.steps[0][0] in (0, 1)

        # No increment lost: every put is in the locked sidecar.
        total_puts = 2 * 2 * PUTS_PER_WORKER
        assert cache.persistent_counters()["stores"] == total_puts

        # No staged tmp litter, and the sidecar is not mistaken for a blob.
        assert list(root.glob("*.tmp")) == []
        assert list(root.glob(".*.tmp")) == []
        assert (root / STATS_SIDECAR).exists()
        assert all(not p.name.startswith(("_", ".")) for p in blobs)


class TestPersistentCounters:
    def test_memory_only_cache_has_no_sidecar(self):
        assert PlanCache().persistent_counters() == {}

    def test_store_and_corrupt_bump_the_sidecar(self, tmp_path):
        root = tmp_path / "plans"
        cache = PlanCache(root)
        key = _key("t", "d")
        cache.put(key, _plan(0))
        assert cache.persistent_counters() == {"stores": 1}

        # A second process (modelled by a fresh cache) sees and extends it.
        other = PlanCache(root)
        other.put(_key("t", "d2"), _plan(1))
        assert cache.persistent_counters()["stores"] == 2

        # Corrupting a blob counts in the shared sidecar too.
        cache.blob_path(key).write_text("{ not json")
        fresh = PlanCache(root)
        assert fresh.get(key) is None
        assert fresh.corrupt == 1
        assert fresh.persistent_counters()["corrupt"] == 1

    def test_sidecar_garbage_is_tolerated(self, tmp_path):
        root = tmp_path / "plans"
        cache = PlanCache(root)
        cache.put(_key("t", "d"), _plan(0))
        (root / STATS_SIDECAR).write_text("[1, 2, 3]\n")  # wrong shape
        assert cache.persistent_counters() == {}
        cache.put(_key("t", "d2"), _plan(1))  # resets cleanly, no crash
        assert cache.persistent_counters() == {"stores": 1}

    def test_clear_sweeps_tmp_litter(self, tmp_path):
        root = tmp_path / "plans"
        cache = PlanCache(root)
        cache.put(_key("t", "d"), _plan(0))
        stray = root / ".deadbeef.12345.0.tmp"  # a killed worker's leavings
        stray.write_text("torn")
        removed = cache.clear()
        assert removed == 1
        assert not stray.exists()

    def test_counters_include_coalesced_and_inflight(self):
        cache = PlanCache()
        counters = cache.counters()
        assert counters["coalesced"] == 0
        assert counters["inflight"] == 0
        cache.coalesced += 3
        cache.inflight = 2
        assert cache.counters()["coalesced"] == 3
        assert cache.counters()["inflight"] == 2
