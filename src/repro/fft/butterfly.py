"""The FFT data-flow graph of Fig. 3: an SW-banyan (butterfly) followed by
the bit-reversal permutation.

The flow graph has ``log N + 1`` ranks of ``N`` vertices.  Rank ``s`` feeds
rank ``s+1`` through two edges per vertex: the *straight* edge (same index)
and the *cross* edge (index with stage bit flipped) — the classic butterfly
pattern, identical to one stage of an SW-banyan.  After the last rank, the
bit-reversal permutation wires output ``i`` to terminal ``reverse(i)``.

This module materializes that graph as data so benchmarks can regenerate
Fig. 3 (via :mod:`repro.viz.diagrams`) and tests can check the structural
facts the paper's step counting relies on — notably that the edges leaving
rank ``s`` are exactly the butterfly exchange on bit ``log N - 1 - s``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..networks.addressing import bit_reverse, ilog2

__all__ = ["FlowEdge", "ButterflyFlowGraph", "butterfly_flow_graph"]


@dataclass(frozen=True)
class FlowEdge:
    """One edge of the flow graph.

    ``kind`` is "straight" (same index), "cross" (stage bit flipped) or
    "bitrev" (closing permutation wire).
    """

    stage: int
    source: int
    target: int
    kind: str


@dataclass(frozen=True)
class ButterflyFlowGraph:
    """The complete ``N``-point FFT data-flow graph."""

    num_points: int
    num_stages: int
    edges: tuple[FlowEdge, ...]

    @property
    def num_vertices(self) -> int:
        """Vertices across all ranks, including the bit-reversed terminals."""
        return self.num_points * (self.num_stages + 2)

    def stage_edges(self, stage: int) -> tuple[FlowEdge, ...]:
        """Edges leaving rank ``stage`` (0-based; ``num_stages`` = bitrev)."""
        return tuple(e for e in self.edges if e.stage == stage)

    def cross_bit(self, stage: int) -> int:
        """Address bit exchanged by rank ``stage`` (DIF order)."""
        if not 0 <= stage < self.num_stages:
            raise ValueError(f"stage {stage} out of range [0, {self.num_stages})")
        return self.num_stages - 1 - stage

    def to_networkx(self):
        """Directed ``networkx`` view; vertex = (rank, index)."""
        import networkx as nx

        graph = nx.DiGraph()
        for edge in self.edges:
            graph.add_edge(
                (edge.stage, edge.source),
                (edge.stage + 1, edge.target),
                kind=edge.kind,
            )
        return graph


def butterfly_flow_graph(num_points: int) -> ButterflyFlowGraph:
    """Build the Fig. 3 flow graph for a power-of-two ``num_points``."""
    width = ilog2(num_points)
    edges: list[FlowEdge] = []
    for stage in range(width):
        bit = width - 1 - stage
        for i in range(num_points):
            edges.append(FlowEdge(stage=stage, source=i, target=i, kind="straight"))
            edges.append(
                FlowEdge(stage=stage, source=i, target=i ^ (1 << bit), kind="cross")
            )
    for i in range(num_points):
        edges.append(
            FlowEdge(
                stage=width, source=i, target=bit_reverse(i, width), kind="bitrev"
            )
        )
    return ButterflyFlowGraph(
        num_points=num_points, num_stages=width, edges=tuple(edges)
    )
