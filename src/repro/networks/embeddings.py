"""Graph embeddings between the compared topologies.

The comparison's background fact — every network here can *host* the others
with known cost — is what makes "which topology should the machine use?" a
fair question.  This module provides the classical constructive embeddings
and the quality metrics used to judge them:

* **ring -> hypercube** via the binary-reflected Gray code (dilation 1);
* **2D mesh/torus -> hypercube** via per-axis Gray codes (dilation 1 for
  power-of-two sides);
* **any graph -> 2D hypermesh** trivially at dilation 1 whenever the guest
  fits in a row/column... not quite: the generic statement is dilation <= 2
  because the hypermesh's diameter is 2 — captured by
  :func:`hypermesh_hosts_with_dilation`.

``dilation(guest, host, mapping)`` is the standard metric: the worst
stretching of a guest edge in the host.
"""

from __future__ import annotations

from typing import Sequence

from .addressing import gray_code, ilog2
from .base import Topology
from .hypercube import Hypercube

__all__ = [
    "ring_into_hypercube",
    "mesh2d_into_hypercube",
    "dilation",
    "hypermesh_hosts_with_dilation",
]


def ring_into_hypercube(dimension: int) -> list[int]:
    """Embed the ``2**dimension``-node ring into the same-size hypercube.

    Returns ``mapping`` with ``mapping[ring_position] = hypercube_node``;
    consecutive ring positions (including the wrap-around pair) land on
    hypercube neighbours — dilation 1, the Gray-code classic.
    """
    n = 1 << dimension
    return [gray_code(i) for i in range(n)]


def mesh2d_into_hypercube(row_bits: int, col_bits: int) -> list[int]:
    """Embed a ``2**row_bits x 2**col_bits`` mesh (or torus) into the
    ``row_bits + col_bits``-dimensional hypercube at dilation 1.

    Row-major guest node ``(r, c)`` maps to the concatenation of the two
    axis Gray codes; neighbours along either axis differ in exactly one bit.
    """
    rows, cols = 1 << row_bits, 1 << col_bits
    mapping = []
    for r in range(rows):
        for c in range(cols):
            mapping.append((gray_code(r) << col_bits) | gray_code(c))
    return mapping


def dilation(guest: Topology, host: Topology, mapping: Sequence[int]) -> int:
    """Worst host-distance between images of guest neighbours.

    ``mapping[guest_node] = host_node`` must be injective onto host nodes.
    """
    if len(mapping) != guest.num_nodes:
        raise ValueError("mapping must cover every guest node")
    if len(set(mapping)) != len(mapping):
        raise ValueError("mapping must be injective")
    for node in mapping:
        host.validate_node(node)
    worst = 0
    for node in guest.nodes():
        for nb in guest.neighbors(node):
            worst = max(worst, host.distance(mapping[node], mapping[nb]))
    return worst


def hypermesh_hosts_with_dilation(guest: Topology, side: int) -> int:
    """Dilation of the identity embedding of ``guest`` into ``Hypermesh2D``.

    Any graph on ``side**2`` nodes embeds into the 2D hypermesh with
    dilation at most 2, because the hypermesh's diameter is 2 — the
    structural reason every algorithm's communication maps so cheaply.
    """
    from .hypermesh import Hypermesh2D

    hm = Hypermesh2D(side)
    if guest.num_nodes != hm.num_nodes:
        raise ValueError("guest size must equal side**2")
    return dilation(guest, hm, list(range(guest.num_nodes)))


def _hypercube_for(mapping: Sequence[int]) -> Hypercube:
    """The smallest hypercube hosting ``mapping`` (helper for tests)."""
    return Hypercube(ilog2(len(mapping)))
