"""Surviving-network structure under a resolved fault set.

The fault-aware router and the property-test harness both need the same
view of a broken machine: *which single-step moves are still possible?*
For point-to-point topologies that is the adjacency minus down links and
down nodes; for hypergraph topologies it is the clique expansion of the
**alive** nets (a degraded net still connects its members — it just
serializes, which is an engine-capacity concern, not a reachability one).

Everything here is deterministic: neighbour lists are sorted ascending, so
the BFS next-hop tables built on top of them are reproducible and the
engine's arbitration order is stable across runs.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence

from .base import ChannelModel, HypergraphTopology, Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..faults.model import ResolvedFaults

__all__ = [
    "surviving_adjacency",
    "reachable_from",
    "components_under",
    "surviving_distances",
]


def surviving_adjacency(
    topology: Topology, faults: "ResolvedFaults"
) -> list[tuple[int, ...]]:
    """Per-node neighbour tuples after removing down links/nodes/nets.

    A down node keeps an empty neighbour list and appears in no other
    node's list.  Hypergraph edges exist where the two nodes share at least
    one net that is not hard-down (degraded nets count: they still carry
    packets, one per step).
    """
    n = topology.num_nodes
    down_nodes = faults.down_nodes
    adjacency: list[tuple[int, ...]] = [()] * n
    if topology.channel_model is ChannelModel.HYPERGRAPH_NET:
        assert isinstance(topology, HypergraphTopology)
        nets = topology.nets()
        neighbour_sets: list[set[int]] = [set() for _ in range(n)]
        for net_id, members in enumerate(nets):
            if faults.net_down(net_id):
                continue
            alive = [m for m in members if m not in down_nodes]
            for m in alive:
                neighbour_sets[m].update(alive)
        for node in range(n):
            neighbour_sets[node].discard(node)
            if node not in down_nodes:
                adjacency[node] = tuple(sorted(neighbour_sets[node]))
        return adjacency
    for node in range(n):
        if node in down_nodes:
            continue
        adjacency[node] = tuple(
            sorted(
                nb
                for nb in topology.neighbors(node)
                if nb not in down_nodes and not faults.link_down(node, nb)
            )
        )
    return adjacency


def reachable_from(adjacency: Sequence[Sequence[int]], start: int) -> set[int]:
    """Nodes reachable from ``start`` in the surviving graph (incl. start)."""
    seen = {start}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for nb in adjacency[node]:
            if nb not in seen:
                seen.add(nb)
                frontier.append(nb)
    return seen


def components_under(adjacency: Sequence[Sequence[int]]) -> list[set[int]]:
    """Connected components of the surviving graph, in first-node order.

    Down nodes (empty adjacency rows that no other row references) come out
    as singleton components — callers who care filter them out.
    """
    seen: set[int] = set()
    components: list[set[int]] = []
    for node in range(len(adjacency)):
        if node in seen:
            continue
        comp = reachable_from(adjacency, node)
        seen |= comp
        components.append(comp)
    return components


def surviving_distances(
    adjacency: Sequence[Sequence[int]], dest: int
) -> list[int]:
    """BFS hop counts from every node **to** ``dest`` (-1 = unreachable).

    The surviving graphs here are undirected (a down link kills both
    directions), so distance-to equals distance-from and one BFS rooted at
    the destination serves every source.
    """
    dist = [-1] * len(adjacency)
    dist[dest] = 0
    frontier = deque([dest])
    while frontier:
        node = frontier.popleft()
        d = dist[node] + 1
        for nb in adjacency[node]:
            if dist[nb] == -1:
                dist[nb] = d
                frontier.append(nb)
    return dist
