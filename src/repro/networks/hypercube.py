"""The binary hypercube.

``N = 2**n`` nodes, each identified with an ``n``-bit address; nodes are
adjacent when their addresses differ in exactly one bit.  The hypercube is
the paper's "high-dimensional" comparison point: it embeds the butterfly
flow graph with one data-transfer step per stage (``log N`` steps) but pays
for its ``log N + 1`` node degree when crossbar pins are normalized for
equal aggregate bandwidth (Section III-D), and its bit-reversal permutation
needs a further ``log N`` steps (Section III-A).
"""

from __future__ import annotations

from typing import Iterator

from .addressing import flip_bit, hamming_distance, ilog2
from .base import PointToPointTopology

__all__ = ["Hypercube"]


class Hypercube(PointToPointTopology):
    """A binary hypercube of dimension ``dimension`` (``2**dimension`` PEs).

    Parameters
    ----------
    dimension:
        Number of address bits ``n = log2(N)``; must be >= 1.
    """

    name = "hypercube"

    def __init__(self, dimension: int):
        dimension = int(dimension)
        if dimension < 1:
            raise ValueError("hypercube dimension must be >= 1")
        super().__init__(1 << dimension)
        self._dimension = dimension

    @classmethod
    def with_nodes(cls, num_nodes: int) -> "Hypercube":
        """Build the hypercube with exactly ``num_nodes`` PEs (a power of 2)."""
        return cls(ilog2(num_nodes))

    # ----------------------------------------------------------- structure
    @property
    def dimension(self) -> int:
        """Number of address bits / hypercube dimensions ``log2 N``."""
        return self._dimension

    def neighbor_along(self, node: int, dim: int) -> int:
        """The neighbour of ``node`` across dimension ``dim`` (bit ``dim``)."""
        self.validate_node(node)
        if not 0 <= dim < self._dimension:
            raise ValueError(f"dimension {dim} out of range [0, {self._dimension})")
        return flip_bit(node, dim)

    def neighbors(self, node: int) -> tuple[int, ...]:
        self.validate_node(node)
        return tuple(flip_bit(node, d) for d in range(self._dimension))

    def links(self) -> Iterator[tuple[int, int]]:
        for node in self.nodes():
            for d in range(self._dimension):
                nb = flip_bit(node, d)
                if node < nb:
                    yield (node, nb)

    def distance(self, node_a: int, node_b: int) -> int:
        """Hamming distance between the two addresses."""
        self.validate_node(node_a)
        self.validate_node(node_b)
        return hamming_distance(node_a, node_b)

    @property
    def diameter(self) -> int:
        """``log2 N`` — antipodal nodes differ in every bit."""
        return self._dimension

    # ------------------------------------------------------------ hardware
    @property
    def node_degree(self) -> int:
        """``log2 N + 1``: one port per dimension plus the PE port."""
        return self._dimension + 1

    @property
    def num_crossbars(self) -> int:
        """One routing crossbar per PE (Section III-D)."""
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypercube(dimension={self._dimension})"
