"""Deflection (hot-potato) routing — reference [3] of the paper.

Fang & Szymanski's companion work analyzed deflection routing on
multidimensional regular meshes: routers have **no buffers**, so every
packet that arrives in a step must leave in the same step; when two packets
want the same profitable output link, one is *deflected* onto a free,
possibly unprofitable one.  This module implements the classical synchronous
model on any point-to-point topology here (it needs node degree >= packets
per node, which holds for permutation traffic):

* one packet injected per node at step 0;
* each step, every node assigns its resident packets to *distinct* output
  links, oldest packet first; a packet prefers links that reduce its
  distance and takes any free link otherwise (the deflection);
* a packet reaching its destination is ejected.

The recorded moves form a :class:`~repro.sim.schedule.CommSchedule`, so
deflection runs are validated by exactly the same hardware checker as every
other discipline, and its step counts are directly comparable with the
store-and-forward engine's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..networks.base import ChannelModel, PointToPointTopology
from ..routing.permutation import Permutation
from .schedule import CommSchedule, ScheduleError

__all__ = ["DeflectionResult", "route_deflection"]


@dataclass
class DeflectionResult:
    """Outcome of a deflection-routing run."""

    schedule: CommSchedule
    steps: int
    total_hops: int
    deflections: int
    per_step_moves: list[int] = field(default_factory=list)

    @property
    def efficiency(self) -> float:
        """Minimal hops over hops actually taken (1.0 = never deflected)."""
        if self.total_hops == 0:
            return 1.0
        topo = self.schedule.topology
        perm = self.schedule.logical
        minimal = sum(
            topo.distance(i, perm[i]) for i in range(perm.n)
        )
        return minimal / self.total_hops


def route_deflection(
    topology: PointToPointTopology,
    perm: Permutation,
    *,
    max_steps: int | None = None,
) -> DeflectionResult:
    """Route one packet per node to ``perm[node]`` with hot-potato switching.

    Raises
    ------
    ScheduleError
        If packets remain after ``max_steps`` (livelock guard; oldest-first
        priority makes this unreachable on the paper's regular topologies
        for permutation traffic at the sizes tested).
    TypeError
        For hypergraph topologies — deflection is a point-to-point
        discipline (a hypermesh net has no notion of a "wrong output").
    """
    if topology.channel_model is not ChannelModel.POINT_TO_POINT:
        raise TypeError("deflection routing needs a point-to-point topology")
    n = topology.num_nodes
    if perm.n != n:
        raise ValueError(f"permutation on {perm.n} points, topology has {n} nodes")
    if max_steps is None:
        max_steps = 50 * topology.diameter + 50

    # packets[node] -> list of (packet_id, age); age = injection step count.
    resident: dict[int, list[int]] = {
        node: [node] for node in range(n) if perm[node] != node
    }
    age = {pid: 0 for pids in resident.values() for pid in pids}
    in_flight = len(age)

    steps: list[dict[int, int]] = []
    total_hops = 0
    deflections = 0
    per_step_moves: list[int] = []

    step_count = 0
    while in_flight:
        if step_count >= max_steps:
            raise ScheduleError(
                f"{in_flight} packets undelivered after {max_steps} steps "
                f"(possible livelock)"
            )
        moves: dict[int, int] = {}
        arrivals: dict[int, list[int]] = {}
        for node in sorted(resident):
            packets = sorted(resident[node], key=lambda pid: -age[pid])
            outputs = list(topology.neighbors(node))
            free = set(outputs)
            if len(packets) > len(outputs):  # pragma: no cover - degree bound
                raise ScheduleError(
                    f"node {node} holds {len(packets)} packets but has only "
                    f"{len(outputs)} output links"
                )
            for pid in packets:
                dest = perm[pid]
                here = topology.distance(node, dest)
                profitable = [
                    nb for nb in outputs
                    if nb in free and topology.distance(nb, dest) < here
                ]
                if profitable:
                    nxt = profitable[0]
                else:
                    # Deflected: any free link (degree >= residents
                    # guarantees one exists).
                    nxt = next(nb for nb in outputs if nb in free)
                    deflections += 1
                free.discard(nxt)
                moves[pid] = nxt
                arrivals.setdefault(nxt, []).append(pid)

        # Apply: eject arrived packets, re-house the rest.
        resident = {}
        for node, pids in arrivals.items():
            stay = []
            for pid in pids:
                age[pid] += 1
                if perm[pid] == node:
                    in_flight -= 1
                else:
                    stay.append(pid)
            if stay:
                resident[node] = stay
        steps.append(moves)
        total_hops += len(moves)
        per_step_moves.append(len(moves))
        step_count += 1

    schedule = CommSchedule(topology=topology, logical=perm, steps=tuple(steps))
    return DeflectionResult(
        schedule=schedule,
        steps=step_count,
        total_hops=total_hops,
        deflections=deflections,
        per_step_moves=per_step_moves,
    )
