"""Unit tests for schedule traffic analysis."""

import pytest

from repro.core import map_fft
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.routing import Permutation
from repro.sim import (
    bisection_crossings,
    channel_utilization,
    route_permutation,
    traffic_summary,
)
from repro.sim.schedule import CommSchedule


class TestBisectionCrossings:
    def test_top_bit_exchange_crosses_fully(self):
        # The first DIF stage flips the MSB: every move crosses the cut.
        mapping = map_fft(Hypercube(4))
        crossings = bisection_crossings(mapping.stage_schedules[0])
        assert crossings == [16]

    def test_low_bit_exchange_never_crosses(self):
        mapping = map_fft(Hypercube(4))
        crossings = bisection_crossings(mapping.stage_schedules[-1])
        assert crossings == [0]

    def test_hypermesh_butterflies_same_pattern(self):
        mapping = map_fft(Hypermesh2D(4))
        first = bisection_crossings(mapping.stage_schedules[0])
        last = bisection_crossings(mapping.stage_schedules[-1])
        assert sum(first) == 16
        assert sum(last) == 0

    def test_empty_schedule(self):
        sched = CommSchedule(Hypercube(3), Permutation.identity(8), ())
        assert bisection_crossings(sched) == []


class TestChannelUtilization:
    def test_hypercube_exchange_uses_every_dim_link_once(self):
        mapping = map_fft(Hypercube(3))
        usage = channel_utilization(mapping.stage_schedules[0])
        assert len(usage) == 8  # every directed dim-2 link used once
        assert set(usage.values()) == {1}

    def test_mesh_shift_link_loads(self):
        mapping = map_fft(Mesh2D(4))
        # Distance-2 stage: interior vertical links carry two packets.
        sched = mapping.stage_schedules[0]
        usage = channel_utilization(sched)
        assert max(usage.values()) == 2

    def test_hypermesh_ports_tracked(self):
        mapping = map_fft(Hypermesh2D(4))
        usage = channel_utilization(mapping.stage_schedules[0])
        # Every node injects once into its column net.
        assert len(usage) == 16
        assert set(usage.values()) == {1}


class TestSummary:
    def test_crossing_fraction(self):
        mapping = map_fft(Hypercube(4))
        ts = traffic_summary(mapping.stage_schedules[0])
        assert ts.crossing_fraction == 1.0
        ts_last = traffic_summary(mapping.stage_schedules[-1])
        assert ts_last.crossing_fraction == 0.0

    def test_zero_move_schedule(self):
        sched = CommSchedule(Hypercube(2), Permutation.identity(4), ())
        ts = traffic_summary(sched)
        assert ts.total_moves == 0
        assert ts.crossing_fraction == 0.0
        assert ts.busiest_channel_load == 0

    def test_routed_bitrev_summary(self):
        from repro.routing import bit_reversal

        routed = route_permutation(Mesh2D(4), bit_reversal(16))
        ts = traffic_summary(routed.schedule)
        assert ts.steps == routed.stats.steps
        assert ts.total_moves == routed.stats.total_hops
        assert ts.bisection_crossings_total >= 8  # half the packets change halves

    def test_full_fft_crossing_totals_ordered(self):
        """Every network moves the same packet pattern across the bisector;
        the hypermesh just has more bandwidth there (Section V)."""
        totals = {}
        for topo in (Hypercube(4), Hypermesh2D(4)):
            mapping = map_fft(topo)
            total = sum(
                sum(bisection_crossings(s)) for s in mapping.stage_schedules
            )
            totals[type(topo).__name__] = total
        # Identical butterfly crossing demand on both networks.
        assert totals["Hypercube"] == totals["Hypermesh2D"]
