"""Three-step permutation routing on the 2D hypermesh (Slepian–Duguid).

Property [6] of [12], used by the paper to bound the FFT's closing
bit-reversal at **3 data-transfer steps**: the 2D hypermesh is rearrangeable —
any permutation of all ``N = s**2`` packets can be realized as

1. a permutation *within every row* (one step: all row nets fire),
2. a permutation *within every column* (one step: all column nets fire),
3. a permutation *within every row* (one step).

The construction is the classical Clos-network argument.  Build the demand
multigraph with one left vertex per source row, one right vertex per
destination row, and one edge per packet joining its source row to its
destination row.  Every vertex has degree exactly ``s``, so König's theorem
colors the edges with ``s`` colors (:mod:`repro.routing.edge_coloring`).
Interpreting *color = intermediate column* yields the three conflict-free
phases:

* phase 1 is row-internal because a proper coloring gives the packets of one
  source row pairwise-distinct colors (columns);
* phase 2 is column-internal and conflict-free because each color class is a
  partial matching between source rows and destination rows;
* phase 3 is row-internal because a permutation delivers pairwise-distinct
  destinations within each row.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..networks.hypermesh import Hypermesh2D
from .edge_coloring import bipartite_edge_coloring
from .permutation import Permutation

__all__ = ["ClosRoute", "route_permutation_3step", "is_row_internal", "is_col_internal"]


def is_row_internal(perm: Permutation, side: int) -> bool:
    """True when every packet stays inside its row of a ``side x side`` layout."""
    if perm.n != side * side:
        raise ValueError("permutation size does not match the layout")
    src = np.arange(perm.n)
    return bool(np.array_equal(src // side, perm.destinations // side))


def is_col_internal(perm: Permutation, side: int) -> bool:
    """True when every packet stays inside its column."""
    if perm.n != side * side:
        raise ValueError("permutation size does not match the layout")
    src = np.arange(perm.n)
    return bool(np.array_equal(src % side, perm.destinations % side))


@dataclass(frozen=True)
class ClosRoute:
    """A decomposition of a permutation into hypermesh net phases.

    Attributes
    ----------
    phases:
        Row/column-internal permutations whose left-to-right composition
        equals the routed permutation.  Length <= 3; each phase costs one
        data-transfer step on the 2D hypermesh.
    """

    phases: tuple[Permutation, ...]

    @property
    def num_steps(self) -> int:
        """Data-transfer steps consumed (= number of phases)."""
        return len(self.phases)

    def composed(self) -> Permutation:
        """Compose the phases back into a single permutation."""
        if not self.phases:
            raise ValueError("empty route")
        result = self.phases[0]
        for phase in self.phases[1:]:
            result = result.compose(phase)
        return result


def route_permutation_3step(
    perm: Permutation,
    hypermesh: Hypermesh2D | None = None,
    *,
    minimize: bool = True,
) -> ClosRoute:
    """Decompose ``perm`` into <= 3 net-internal phases on a 2D hypermesh.

    Parameters
    ----------
    perm:
        Full permutation of the ``side**2`` node positions (``perm[i]`` is
        the destination node of the packet starting at node ``i``).
    hypermesh:
        Target network; inferred as ``Hypermesh2D(sqrt(n))`` when omitted.
    minimize:
        Drop identity phases, so row-internal permutations cost 1 step and
        "row then column"-shaped permutations cost 2.

    Returns
    -------
    ClosRoute
        Phases verified to compose to ``perm`` (asserted structurally by
        construction; the simulator independently replays them).
    """
    n = perm.n
    if hypermesh is None:
        side = int(round(n**0.5))
        if side * side != n:
            raise ValueError(f"{n} positions do not form a square hypermesh")
        hypermesh = Hypermesh2D(side)
    side = hypermesh.side
    if n != hypermesh.num_nodes:
        raise ValueError("permutation size does not match the hypermesh")

    src = np.arange(n, dtype=np.int64)
    dest = perm.destinations
    src_row = src // side
    dst_row = dest // side
    dst_col = dest % side

    # Demand multigraph: one edge per packet, source row -> destination row.
    edges = list(zip(src_row.tolist(), dst_row.tolist()))
    colors, _ = bipartite_edge_coloring(side, side, edges)
    mid_col = colors  # color c == intermediate column c

    # Phase 1: within each source row, move packet i to column mid_col[i].
    phase1 = Permutation(src_row * side + mid_col)
    # Phase 2: within column mid_col[i], move to the destination row.
    after1 = phase1.destinations
    phase2_dest = np.empty(n, dtype=np.int64)
    phase2_dest[after1] = dst_row * side + mid_col
    phase2 = Permutation(phase2_dest)
    # Phase 3: within the destination row, move to the destination column.
    after2 = dst_row * side + mid_col
    phase3_dest = np.empty(n, dtype=np.int64)
    phase3_dest[after2] = dst_row * side + dst_col
    phase3 = Permutation(phase3_dest)

    phases = [phase1, phase2, phase3]
    if minimize:
        phases = [p for p in phases if not p.is_identity()]
        if not phases:
            phases = [Permutation.identity(n)]
    route = ClosRoute(phases=tuple(phases))
    return route
