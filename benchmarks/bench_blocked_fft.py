"""E15 — extension: blocked FFT (N samples on P < N PEs).

The paper sizes N = P; this bench extends the comparison to realistic
block sizes and shows the paper's ordering (hypermesh < hypercube < mesh in
steps) survives blocking, with the hypermesh's bit-reversal bound scaling as
3m for block size m.
"""

import numpy as np
from conftest import emit

from repro.fft import blocked_fft
from repro.networks import Hypercube, Hypermesh2D, Mesh2D
from repro.viz import format_table


def test_blocked_fft_4096_samples_256_pes(benchmark, rng):
    def run():
        x = rng.normal(size=4096) + 1j * rng.normal(size=4096)
        expected = np.fft.fft(x)
        out = {}
        for topo in (Mesh2D(16), Hypercube(8), Hypermesh2D(16)):
            result = blocked_fft(topo, x)
            assert np.allclose(result.spectrum, expected)
            out[type(topo).__name__] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            name,
            r.block_size,
            r.remote_stages,
            r.local_stages,
            r.butterfly_steps,
            r.bitrev_steps,
            r.total_steps,
        ]
        for name, r in results.items()
    ]
    emit(
        "4096-point FFT on 256 PEs (block size 16)",
        format_table(
            ["network", "m", "remote", "local", "butterfly", "bitrev", "total"],
            rows,
        ),
    )
    totals = {name: r.total_steps for name, r in results.items()}
    assert totals["Hypermesh2D"] < totals["Hypercube"] < totals["Mesh2D"]


def test_direct_h_relation_vs_round_plan(benchmark, rng):
    """Executing the blocked bit-reversal m-relation directly through the
    engine pipelines across rounds: measured steps undercut the 3m
    round-by-round plan."""
    import numpy as np

    from repro.networks.addressing import bit_reversal_permutation
    from repro.sim import route_demands

    def run():
        side, m = 8, 16
        p = side * side
        n = p * m
        perm = bit_reversal_permutation(n)
        idx = np.arange(n)
        demands = [
            (int(s), int(d))
            for s, d in zip(idx // m, perm // m)
            if s != d
        ]
        hm = Hypermesh2D(side)
        direct = route_demands(hm, demands)
        planned = blocked_fft(hm, np.zeros(n)).bitrev_steps
        return direct.stats.steps, planned, 3 * m

    direct, planned, bound = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Blocked bit reversal (m = 16 on 64 PEs): direct vs round plan",
        f"direct engine routing: {direct} steps\n"
        f"round-by-round Clos plan: {planned} steps (bound 3m = {bound})",
    )
    assert direct <= planned


def test_block_size_sweep_hypermesh(benchmark, rng):
    def run():
        out = []
        for m in (1, 4, 16, 64):
            n = 64 * m
            x = rng.normal(size=n)
            result = blocked_fft(Hypermesh2D(8), x)
            assert np.allclose(result.spectrum, np.fft.fft(x))
            out.append((m, result.butterfly_steps, result.bitrev_steps, 3 * m))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Hypermesh (64 PEs): block-size sweep",
        format_table(["m", "butterfly steps", "bitrev steps", "3m bound"], rows),
    )
    for m, _, bitrev, bound in rows:
        assert bitrev <= bound
