"""Degraded-mode arbitration: the engine's fault-injection execution path.

When an **enabled** :class:`~repro.faults.model.FaultModel` reaches
:func:`~repro.sim.engine.route_permutation` / ``route_demands``, routing is
handed to :func:`route_core_degraded` instead of the indexed fault-free
loop.  The split keeps the hot path untouched (a disabled or absent model
never comes here — that is the bit-identical no-op contract) and keeps this
loop simple enough to audit: it mirrors the reference engine's
node-order-then-FIFO arbitration exactly, adding only the fault semantics:

* hops come from a :class:`~repro.faults.routing.FaultAwareRouter`
  (minimal detours on the surviving graph; ``UnroutableError`` up front
  when a destination is partitioned away);
* hard-down hypermesh nets are never traversed, and **degraded** nets are
  serialized — at most one packet crosses per step instead of a full
  partial permutation (the word model's one-step permutation capability is
  exactly what a broken crossbar loses);
* each *granted* move independently fails with the model's per-step drop
  probability; the packet stays queued and ``retried`` is incremented.
  After ``retry_limit`` failed transmissions the packet is permanently
  **dropped**: removed from the network and counted in ``dropped``.

Accounting invariant (enforced by the property suite): at every committed
step, ``packets == delivered + dropped + in-flight``.  The optional
``on_fault(kind, step, packet, node, attempts)`` hook observes every retry
and drop; :class:`repro.obs.FaultEventProbe` adapts it onto the documented
``fault.retry`` / ``fault.drop`` trace events.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Callable, Sequence

from ..faults.model import FaultModel
from ..faults.routing import FaultAwareRouter
from ..networks.base import ChannelModel, HypergraphTopology, Topology
from .schedule import ScheduleError
from .stats import RoutingStats

__all__ = ["FaultCallback", "route_core_degraded"]

#: Signature of the ``on_fault`` hook: ``(kind, step, packet, node,
#: attempts)`` where ``kind`` is ``"retry"`` or ``"drop"``, ``node`` is the
#: packet's position when the transmission failed, and ``attempts`` is its
#: cumulative failed-transmission count.
FaultCallback = Callable[[str, int, int, int, int], None]


def route_core_degraded(
    topology: Topology,
    sources: Sequence[int],
    dests: Sequence[int],
    router,
    max_steps: int,
    fault_model: FaultModel,
    *,
    arbitration: str = "overtaking",
    on_step=None,
    on_fault: FaultCallback | None = None,
    timing: bool = False,
) -> tuple[list[dict[int, int]], RoutingStats]:
    """Route a demand set through a faulted machine.

    ``router`` is the fault-free base discipline (it is wrapped in a
    :class:`FaultAwareRouter` here) or an already-wrapped instance.
    Raises :class:`~repro.faults.model.UnroutableError` before the first
    step if any packet's endpoints are dead or partitioned apart, and
    :class:`ScheduleError` if undropped packets remain past ``max_steps``
    (the engine's timeout) or arbitration deadlocks.
    """
    fifo = arbitration == "fifo"
    n = topology.num_nodes
    hypergraph = topology.channel_model is ChannelModel.HYPERGRAPH_NET
    if hypergraph and not isinstance(topology, HypergraphTopology):
        raise TypeError(
            f"hypergraph channel model requires a HypergraphTopology, "
            f"got {type(topology).__name__}"
        )
    if isinstance(router, FaultAwareRouter):
        far = router
    else:
        far = FaultAwareRouter(topology, router, fault_model)
    faults = far.faults
    far.check_routable(sources, dests)

    npk = len(sources)
    position = list(sources)
    dests = list(dests)
    queues: list[deque[int]] = [deque() for _ in range(n)]
    in_flight = 0
    for pid in range(npk):
        if position[pid] != dests[pid]:
            queues[position[pid]].append(pid)
            in_flight += 1

    attempts = [0] * npk
    retry_limit = fault_model.retry_limit
    transmit_ok = fault_model.transmit_ok

    stats = RoutingStats()
    stats.delivered = npk - in_flight
    stats.max_queue_depth = max((len(q) for q in queues), default=0)
    steps: list[dict[int, int]] = []
    per_step_seconds = stats.per_step_seconds if timing else None

    while in_flight:
        t0 = perf_counter() if per_step_seconds is not None else 0.0
        if stats.steps >= max_steps:
            raise ScheduleError(
                f"{in_flight} packets undelivered after {max_steps} steps"
            )
        # Explicit list in grant (= priority) order: the transmission phase
        # must apply grants in arbitration order, not whatever iteration
        # order a mapping happens to have.
        granted: list[tuple[int, int]] = []
        used_links: set[tuple[int, int]] = set()
        used_inject: set[tuple[int, int]] = set()
        used_deliver: set[tuple[int, int]] = set()
        used_serial: set[int] = set()

        # Propose in deterministic order: node index, then FIFO position —
        # the reference engine's arbitration, with fault constraints added.
        for node in range(n):
            for pid in queues[node]:
                nxt = far.next_hop(node, dests[pid])
                if nxt is None:
                    continue
                if hypergraph:
                    net = far.shared_net(node, nxt)
                    if net is None:
                        raise ScheduleError(
                            f"router proposed non-net hop {node} -> {nxt}"
                        )
                    degraded = faults.net_degraded(net)
                    if (
                        (degraded and net in used_serial)
                        or (net, node) in used_inject
                        or (net, nxt) in used_deliver
                    ):
                        stats.blocked_moves += 1
                        if fifo:
                            break  # head of line holds the queue
                        continue
                    used_inject.add((net, node))
                    used_deliver.add((net, nxt))
                    if degraded:
                        used_serial.add(net)
                else:
                    link = (node, nxt)
                    if link in used_links:
                        stats.blocked_moves += 1
                        if fifo:
                            break
                        continue
                    used_links.add(link)
                granted.append((pid, nxt))

        if not granted:
            raise ScheduleError(
                f"deadlock: {in_flight} packets queued but none can move"
            )

        # Transmission phase: each granted move independently survives or
        # fails the intermittent-fault draw.  Failures leave the packet
        # queued (a retry); a packet past its retry budget is dropped.
        moves: dict[int, int] = {}
        for pid, nxt in granted:
            if not transmit_ok(stats.steps, pid):
                attempts[pid] += 1
                stats.retried += 1
                node = position[pid]
                if on_fault is not None:
                    on_fault("retry", stats.steps, pid, node, attempts[pid])
                if retry_limit is not None and attempts[pid] > retry_limit:
                    queues[node].remove(pid)
                    in_flight -= 1
                    stats.dropped += 1
                    if on_fault is not None:
                        on_fault("drop", stats.steps, pid, node, attempts[pid])
                continue
            moves[pid] = nxt
            queues[position[pid]].remove(pid)
            position[pid] = nxt
            if nxt == dests[pid]:
                stats.delivered += 1
                in_flight -= 1
            else:
                queues[nxt].append(pid)

        # A step where every granted move failed its transmission still
        # advances machine time: commit it (possibly empty) so the step
        # count honestly reflects the wall the faults cost.
        steps.append(moves)
        stats.steps += 1
        stats.total_hops += len(moves)
        stats.per_step_moves.append(len(moves))
        depth = max((len(q) for q in queues), default=0)
        if depth > stats.max_queue_depth:
            stats.max_queue_depth = depth
        if per_step_seconds is not None:
            per_step_seconds.append(perf_counter() - t0)
        if on_step is not None:
            on_step(stats.steps - 1, moves, stats)

    return steps, stats
