"""The broader ASCEND/DESCEND algorithm family of Section I: generic
runner, prefix sums, all-reduce/broadcast, and matrix transpose."""

from .alltoall import (
    TotalExchangePlan,
    total_exchange_demand,
    total_exchange_lower_bound,
    total_exchange_plan,
)
from .ascend_descend import AscendDescendResult, run_ascend, run_descend
from .reduce import ReduceResult, parallel_allreduce, parallel_broadcast
from .scan import ScanResult, parallel_prefix_sum
from .transpose import transpose_schedule

__all__ = [
    "AscendDescendResult",
    "run_ascend",
    "run_descend",
    "ScanResult",
    "parallel_prefix_sum",
    "ReduceResult",
    "parallel_allreduce",
    "parallel_broadcast",
    "transpose_schedule",
    "TotalExchangePlan",
    "total_exchange_plan",
    "total_exchange_lower_bound",
    "total_exchange_demand",
]
